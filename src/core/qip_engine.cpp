// QipEngine: construction, node entry, configuration transactions, quorum
// voting, and commit.  Departure, maintenance, and partition handling live
// in their own translation units.
#include "core/qip_engine.hpp"

#include <algorithm>
#include <sstream>

#include "fault/adversary.hpp"
#include "sim/sim_context.hpp"
#include "quorum/dynamic_linear.hpp"
#include "util/logging.hpp"

namespace qip {

namespace {
const char* vote_label(Vote v) {
  switch (v) {
    case Vote::kGrant: return "grant";
    case Vote::kBusy: return "busy";
    case Vote::kConflict: return "conflict";
  }
  return "?";
}

/// Closes the transaction's open "quorum_round" span, if any.  Safe to call
/// on every resolution path: a round that never opened a span (tracing off,
/// or failed before forming a group) is a no-op.
void obs_close_round(obs::TraceRecorder& rec, double now, ConfigTxn& txn,
                     const char* result) {
  if (txn.obs_round_span == 0) return;
  rec.end_span(
      now, txn.obs_round_span, "quorum_round", "qip", txn.allocator,
      {{"result", result},
       {"confirms", txn.confirms},
       {"busy", txn.busy},
       {"conflicts", txn.conflicts}});
  txn.obs_round_span = 0;
}
}  // namespace

const char* to_string(QipMsg m) {
  switch (m) {
    case QipMsg::kHello: return "HELLO";
    case QipMsg::kComReq: return "COM_REQ";
    case QipMsg::kComCfg: return "COM_CFG";
    case QipMsg::kComAck: return "COM_ACK";
    case QipMsg::kChReq: return "CH_REQ";
    case QipMsg::kChPrp: return "CH_PRP";
    case QipMsg::kChCnf: return "CH_CNF";
    case QipMsg::kChCfg: return "CH_CFG";
    case QipMsg::kChAck: return "CH_ACK";
    case QipMsg::kQuorumClt: return "QUORUM_CLT";
    case QipMsg::kQuorumCfm: return "QUORUM_CFM";
    case QipMsg::kQuorumUpd: return "QUORUM_UPD";
    case QipMsg::kQuorumRel: return "QUORUM_REL";
    case QipMsg::kQdJoin: return "QD_JOIN";
    case QipMsg::kQdWelcome: return "QD_WELCOME";
    case QipMsg::kUpdateLoc: return "UPDATE_LOC";
    case QipMsg::kReturnAddr: return "RETURN_ADDR";
    case QipMsg::kReturnAck: return "RETURN_ACK";
    case QipMsg::kBlockReturn: return "BLOCK_RETURN";
    case QipMsg::kResign: return "RESIGN";
    case QipMsg::kAllocChange: return "ALLOC_CHANGE";
    case QipMsg::kAddrRec: return "ADDR_REC";
    case QipMsg::kRecRep: return "REC_REP";
    case QipMsg::kRepReq: return "REP_REQ";
    case QipMsg::kRepAck: return "REP_ACK";
    case QipMsg::kReclaimDone: return "RECLAIM_DONE";
    case QipMsg::kMergePoll: return "MERGE_POLL";
    case QipMsg::kAddrChallenge: return "ADDR_CHALLENGE";
    case QipMsg::kChallengeAck: return "CHALLENGE_ACK";
  }
  return "?";
}

QipEngine::QipEngine(Transport& transport, Rng& rng, QipParams params)
    : AutoconfProtocol(transport, rng),
      params_(params),
      channel_(transport, ReliableParams{params.rpc_retry_timeout,
                                         params.rpc_retry_backoff,
                                         params.rpc_max_retries}),
      clusters_(transport.topology()) {
  QIP_ASSERT(params_.pool_size >= 4);
  channel_.set_enabled(params_.reliable_rpcs);
}

bool QipEngine::quorum_critical(QipMsg m) {
  switch (m) {
    case QipMsg::kQuorumClt:   // lock acquire / read round
    case QipMsg::kQuorumCfm:   // vote
    case QipMsg::kQuorumUpd:   // commit / write round
    case QipMsg::kQuorumRel:   // abort-path release
    case QipMsg::kQdJoin:      // replica sync
    case QipMsg::kQdWelcome:
    case QipMsg::kRepReq:      // liveness probe gating reclamation
    case QipMsg::kRepAck:
    case QipMsg::kReclaimDone:
    case QipMsg::kComCfg:      // configuration handover
    case QipMsg::kComAck:
    case QipMsg::kChPrp:
    case QipMsg::kChCnf:
    case QipMsg::kChCfg:
    case QipMsg::kChAck:
    case QipMsg::kReturnAddr:  // departure: losing one leaks an address
    case QipMsg::kReturnAck:
    case QipMsg::kBlockReturn:
    case QipMsg::kResign:
    case QipMsg::kAllocChange:
      return true;
    case QipMsg::kHello:       // periodic — the next beacon retries for free
    case QipMsg::kComReq:      // entry retries cover these
    case QipMsg::kChReq:
    case QipMsg::kUpdateLoc:   // soft state, refreshed every scan
    case QipMsg::kAddrRec:     // flood-borne
    case QipMsg::kRecRep:      // reclamation probes unclaimed holders anyway
    case QipMsg::kMergePoll:   // periodic merge scan
    case QipMsg::kAddrChallenge:  // challenge timeout IS the signal; an
    case QipMsg::kChallengeAck:   // acked retry would mask real silence
      return false;
  }
  return false;
}

std::uint64_t QipEngine::audit_domain(NodeId id) const {
  const QipNodeState* st = nodes_.find(id);
  if (st == nullptr) return 0;
  // A quarantined peer was expelled by the hardened protocol: the network
  // revoked its claim, so whatever address it keeps squatting on no longer
  // collides *as far as the protocol's service is concerned*.  A per-node
  // domain models that expulsion for the uniqueness audit.
  if (quarantined_.count(id) != 0) {
    return 0xAD5E'0000'0000'0000ULL ^ static_cast<std::uint64_t>(id);
  }
  const NetworkId& nid = st->network_id;
  // Two healed partitions share a nonce but disagree on the low address
  // until the merge resolves, so both fields feed the tag.
  return (static_cast<std::uint64_t>(nid.low.value()) << 32) ^
         (nid.nonce * 0x9e3779b97f4a7c15ULL);
}

QipEngine::~QipEngine() {
  hello_timer_.cancel();
  nodes_.for_each([](NodeId, QipNodeState& st) { st.cancel_timers(); });
  for (auto& [id, txn] : txns_) {
    txn.retry_timer.cancel();
    txn.round_timer.cancel();
  }
  for (auto& [id, rec] : reclaims_) rec.settle_timer.cancel();
}

QipNodeState& QipEngine::node(NodeId id) { return nodes_.at(id); }

const QipNodeState& QipEngine::node(NodeId id) const { return nodes_.at(id); }

const QipNodeState& QipEngine::state_of(NodeId id) const { return node(id); }

void QipEngine::trace(QipMsg msg, NodeId from, NodeId to, std::uint32_t hops,
                      const std::string& detail) {
  // Mirror every protocol message into the structured trace: name = the
  // paper's message vocabulary, so `qip-trace summary` reports the same mix
  // Table 1 does.
  if (ctx().tracing_on()) {
    ctx().recorder().instant(sim().now(), to_string(msg), "qip",
                                           from, {{"to", to}, {"hops", hops}});
  }
  if (!trace_) return;
  trace_(TraceEvent{sim().now(), msg, from, to, hops, detail});
}

// ---------------------------------------------------------------------------
// Entry
// ---------------------------------------------------------------------------

void QipEngine::node_entered(NodeId id) {
  QIP_ASSERT_MSG(topology().has_node(id), "node " << id << " not placed");
  auto [st, fresh] = nodes_.ensure(id);
  if (!fresh) {
    // Re-entry (merge rejoin): reset to unconfigured, keep the slot.
    st.cancel_timers();
    st = QipNodeState{};
    clusters_.remove(id);
  }
  auto& rec = record_for(id);
  rec = ConfigRecord{};
  rec.requested_at = sim().now();
  start_configuration(id);
}

void QipEngine::start_configuration(NodeId id) {
  if (!alive(id) || !topology().has_node(id)) return;
  auto& st = node(id);
  if (st.role != Role::kUnconfigured) return;
  st.last_entry_attempt = sim().now();

  // A crashed radio can neither request nor bootstrap-broadcast, yet it may
  // still *see* nearby heads — without this park the entry flow would cycle
  // start_configuration -> (sends fail) -> bootstrap_attempt -> (head
  // visible) -> start_configuration forever at one instant.  Stay
  // unconfigured; the hello rescue scan retries after recovery.
  if (!transport().radio_up(id)) return;

  // §IV-B: join as a common node when a head is within ch_radius hops; the
  // entering node learns nearby heads from their periodic hello messages.
  std::uint64_t extra_hops = 0;
  if (auto allocator = choose_common_allocator(id, extra_hops)) {
    const PendingRequest req{id, /*for_cluster_head=*/false, extra_hops};
    if (send(id, *allocator, QipMsg::kComReq, Traffic::kConfiguration,
             extra_hops,
             [this, a = *allocator, req](std::uint64_t h) {
               PendingRequest r = req;
               r.hops_base = h;
               enqueue_request(a, r);
             })) {
      return;
    }
  }

  // No head within two hops: ask the nearest head anywhere for a block.
  if (auto nearest = clusters_.nearest_head(id)) {
    const PendingRequest req{id, /*for_cluster_head=*/true, 0};
    if (send(id, *nearest, QipMsg::kChReq, Traffic::kConfiguration, 0,
             [this, a = *nearest, req](std::uint64_t h) {
               PendingRequest r = req;
               r.hops_base = h;
               enqueue_request(a, r);
             })) {
      return;
    }
  }

  // No configured network reachable: bootstrap as the first node (§IV-B).
  begin_bootstrap(id);
}

std::optional<NodeId> QipEngine::choose_common_allocator(
    NodeId requestor, std::uint64_t& extra_hops) {
  auto heads = clusters_.heads_within(requestor, params_.ch_radius);
  std::erase_if(heads,
                [&](NodeId h) { return !alive(h) || is_quarantined(h); });
  if (heads.empty()) return std::nullopt;
  if (!params_.pick_largest_block || heads.size() == 1) {
    return heads.front();  // nearest (heads_within sorts by distance)
  }
  // §IV-B alternative: poll each candidate for its available block size and
  // pick the largest.  The poll costs one request/reply pair per candidate.
  NodeId best = heads.front();
  std::uint64_t best_size = 0;
  std::uint64_t max_rtt = 0;
  for (NodeId h : heads) {
    const auto d = topology().hop_distance(requestor, h);
    if (!d) continue;
    transport().stats().record(Traffic::kConfiguration, 2ULL * *d, 2);
    max_rtt = std::max<std::uint64_t>(max_rtt, 2ULL * *d);
    const std::uint64_t size = node(h).visible_free();
    if (size > best_size || (size == best_size && h < best)) {
      best = h;
      best_size = size;
    }
  }
  extra_hops = max_rtt;  // polls run in parallel; slowest reply gates
  return best;
}

// ---------------------------------------------------------------------------
// Bootstrap (first node in an empty network)
// ---------------------------------------------------------------------------

void QipEngine::begin_bootstrap(NodeId id) {
  auto& st = node(id);
  st.bootstrap_tries = 0;
  bootstrap_attempt(id);
}

void QipEngine::bootstrap_attempt(NodeId id) {
  if (!alive(id) || !topology().has_node(id)) return;
  auto& st = node(id);
  if (st.role != Role::kUnconfigured) return;
  if (!transport().radio_up(id)) {
    // Radio crashed while the retry timer was pending: park (see
    // start_configuration) instead of burning retries into become_first_head.
    st.last_entry_attempt = sim().now();
    return;
  }

  // A head may have appeared (another bootstrapper won, or we moved into a
  // configured network): fall back to normal configuration.
  if (clusters_.nearest_head(id) ||
      !clusters_.heads_within(id, params_.ch_radius).empty()) {
    start_configuration(id);
    return;
  }

  if (st.bootstrap_tries >= params_.max_r) {
    become_first_head(id);
    return;
  }
  ++st.bootstrap_tries;
  // One broadcast transmission asking for a configured neighbor.
  transport().stats().record(Traffic::kConfiguration, 1);
  trace(QipMsg::kComReq, id, kNoNode, 1, "bootstrap broadcast");
  st.bootstrap_timer =
      sim().after(params_.te, [this, id] { bootstrap_attempt(id); });
}

void QipEngine::become_first_head(NodeId id) {
  auto& st = node(id);
  QIP_ASSERT(st.role == Role::kUnconfigured);
  st.role = Role::kClusterHead;
  st.owned_universe =
      AddressBlock::contiguous(params_.pool_base, params_.pool_size);
  st.ip_space = st.owned_universe;
  const IpAddress self_ip = st.ip_space.pop_lowest();
  st.ip = self_ip;
  st.table.commit_allocate(self_ip, id, 0);
  st.version = 1;
  st.network_id = NetworkId{self_ip, rng().next()};
  st.configurer = id;
  clusters_.set_head(id);

  auto& rec = record_for(id);
  rec.success = true;
  rec.address = self_ip;
  rec.latency_hops = params_.max_r;  // the unanswered request broadcasts
  rec.attempts = params_.max_r;
  rec.completed_at = sim().now();
  ++config_successes_;
  if (ctx().tracing_on()) {
    ctx().recorder().instant(
        sim().now(), "head_elected", "cluster", id,
        {{"first", std::uint32_t{1}},
         {"universe", static_cast<std::uint64_t>(st.owned_universe.size())}});
  }
  QIP_DEBUG << "node " << id << " bootstrapped as first head with "
            << st.owned_universe.size() << " addresses";
}

// ---------------------------------------------------------------------------
// Request queueing (one transaction per allocator at a time)
// ---------------------------------------------------------------------------

void QipEngine::enqueue_request(NodeId allocator, PendingRequest req) {
  if (!alive(allocator)) return;
  // Silent defection: the attacker head accepts the request and drops it on
  // the floor.  The requestor's own retries (and eventually the rescue
  // scan) route around it; hardened mode additionally quarantines the head
  // once the failure detector catches its dropped probe service.
  if (attack_active(allocator, AttackKind::kSilentDefection)) {
    ++adversary_ctl()->stats().dropped_services;
    return;
  }
  auto& st = node(allocator);
  if (st.role != Role::kClusterHead) {
    // The chosen allocator demoted/dissolved meanwhile; let the requestor
    // pick again.
    if (alive(req.requestor)) {
      sim().post(params_.busy_backoff,
                  [this, r = req.requestor] { start_configuration(r); });
    }
    return;
  }
  st.pending.push_back(req);
  pump_pending(allocator);
}

void QipEngine::pump_pending(NodeId allocator) {
  if (!alive(allocator)) return;
  auto& st = node(allocator);
  if (st.active_txn != 0 || st.pending.empty()) return;
  const PendingRequest req = st.pending.front();
  st.pending.pop_front();
  if (!alive(req.requestor) || !topology().has_node(req.requestor)) {
    pump_pending(allocator);
    return;
  }
  begin_txn(allocator, req);
}

void QipEngine::begin_txn(NodeId allocator, const PendingRequest& req) {
  auto& st = node(allocator);
  const std::uint64_t id = next_txn_++;
  ConfigTxn txn;
  txn.id = id;
  txn.requestor = req.requestor;
  txn.allocator = allocator;
  txn.for_cluster_head = req.for_cluster_head;
  txn.base_hops = req.hops_base;
  st.active_txn = id;
  auto [it, inserted] = txns_.emplace(id, std::move(txn));
  QIP_ASSERT(inserted);
  ConfigTxn& t = it->second;

  if (ctx().tracing_on()) {
    t.obs_span = ctx().recorder().begin_span(
        sim().now(), "config_txn", "qip", allocator,
        {{"txn", id},
         {"requestor", req.requestor},
         {"for_head", static_cast<std::uint32_t>(req.for_cluster_head)}});
  }

  // Overall transaction deadline: if the exchange wedges (requestor died
  // mid-handshake, voters unreachable), fail and move on.
  t.retry_timer = sim().after(params_.txn_timeout, [this, id] {
    auto it = txns_.find(id);
    if (it != txns_.end()) finish_config_failure(it->second);
  });

  bool blocked = false;
  if (!propose_next(t, &blocked)) {
    if (blocked) {
      // A remote borrower holds our space; wait for its release rather than
      // burning an agent hop or failing.  Re-queue at the front and retry
      // after a backoff (lock releases also pump the queue).
      t.retry_timer.cancel();
      st.active_txn = 0;
      txns_.erase(id);
      st.pending.push_front(req);
      sim().post(params_.busy_backoff,
                  [this, allocator] { pump_pending(allocator); });
      return;
    }
    if (!agent_forward(t)) finish_config_failure(t);
    return;
  }

  if (t.for_cluster_head) {
    // Table 1 handshake: CH_PRP down, CH_CNF back, then quorum collection.
    const AddressBlock prp = t.proposed_block;
    if (!send(allocator, t.requestor, QipMsg::kChPrp, Traffic::kConfiguration,
              t.base_hops,
              [this, id, allocator](std::uint64_t h1) {
                auto it = txns_.find(id);
                if (it == txns_.end()) return;
                const NodeId requestor = it->second.requestor;
                if (!send(requestor, allocator, QipMsg::kChCnf,
                          Traffic::kConfiguration, h1,
                          [this, id](std::uint64_t h2) {
                            auto it2 = txns_.find(id);
                            if (it2 == txns_.end()) return;
                            it2->second.base_hops = h2;
                            start_quorum_round(it2->second);
                          })) {
                  finish_config_failure(it->second);
                }
              },
              prp.to_string())) {
      finish_config_failure(t);
    }
    return;
  }
  start_quorum_round(t);
}

// ---------------------------------------------------------------------------
// Proposal selection (IPSpace first, then QuorumSpace borrowing, §V-A)
// ---------------------------------------------------------------------------

bool QipEngine::propose_next(ConfigTxn& txn, bool* blocked_by_lock) {
  auto& a = node(txn.allocator);
  if (blocked_by_lock) *blocked_by_lock = false;
  if (txn.attempt >= params_.max_config_attempts) return false;

  auto self_lock_free = [&](NodeId owner) {
    auto it = a.space_locks.find(owner);
    const bool free =
        it == a.space_locks.end() || it->second.txn_id == txn.id;
    if (!free && blocked_by_lock) *blocked_by_lock = true;
    return free;
  };
  auto take_self_lock = [&](NodeId owner) {
    auto& lock = a.space_locks[owner];
    lock.txn_id = txn.id;
    lock.expiry.cancel();  // the allocator's own lock expires with the txn
  };

  if (txn.for_cluster_head) {
    // A new head receives half the allocator's own IPSpace; blocks are never
    // borrowed (§IV-B).
    if (a.ip_space.size() < 2 || !self_lock_free(txn.allocator)) return false;
    AddressBlock lower = a.ip_space;
    txn.proposed_block = lower.split_half();
    txn.owner = txn.allocator;
    take_self_lock(txn.owner);
    ++txn.attempt;
    return true;
  }

  // Own IPSpace first.
  if (!a.ip_space.empty() && self_lock_free(txn.allocator)) {
    txn.proposed = a.ip_space.lowest();
    txn.proposed_block = AddressBlock(txn.proposed, txn.proposed);
    txn.owner = txn.allocator;
    take_self_lock(txn.owner);
    ++txn.attempt;
    return true;
  }

  if (!params_.enable_borrowing) return false;

  // Borrow from QuorumSpace: pick the replica with the largest free pool
  // whose owner group is at least partly reachable.
  NodeId best = kNoNode;
  std::uint64_t best_size = 0;
  for (const auto& [owner, rep] : a.replicas) {
    if (rep.free_pool.empty() || !self_lock_free(owner)) continue;
    if (rep.free_pool.size() > best_size) {
      best = owner;
      best_size = rep.free_pool.size();
    }
  }
  if (best == kNoNode) return false;
  const auto& rep = a.replicas.at(best);
  txn.proposed = rep.free_pool.lowest();
  txn.proposed_block = AddressBlock(txn.proposed, txn.proposed);
  txn.owner = best;
  take_self_lock(best);
  ++txn.attempt;
  return true;
}

bool QipEngine::agent_forward(ConfigTxn& txn) {
  // §V-A: when even QuorumSpace is depleted, the head relays the request to
  // its own configurer rather than starting a reclamation right away.
  auto& a = node(txn.allocator);
  const NodeId agent_target = a.configurer;
  if (agent_target == kNoNode || agent_target == txn.allocator ||
      !alive(agent_target) || !is_head(agent_target)) {
    return false;
  }
  const PendingRequest req{txn.requestor, txn.for_cluster_head, txn.base_hops};
  const QipMsg kind = txn.for_cluster_head ? QipMsg::kChReq : QipMsg::kComReq;
  if (!send(txn.allocator, agent_target, kind, Traffic::kConfiguration,
            txn.base_hops,
            [this, agent_target, req](std::uint64_t h) {
              PendingRequest r = req;
              r.hops_base = h;
              enqueue_request(agent_target, r);
            },
            "agent forward")) {
    return false;
  }
  // Hand the transaction off: close ours without recording failure.
  end_txn(txn);
  return true;
}

// ---------------------------------------------------------------------------
// Quorum rounds
// ---------------------------------------------------------------------------

void QipEngine::start_quorum_round(ConfigTxn& txn) {
  auto& a = node(txn.allocator);
  ++txn.round;
  txn.confirms = 0;
  txn.busy = 0;
  txn.conflicts = 0;
  txn.latest_ts = 0;
  txn.voters.clear();
  txn.round_timer.cancel();
  txn.round_open = false;
  txn.responded.clear();
  txn.conflict_voters.clear();

  // The replica group for `owner`'s space: the owner plus its QDSet.  When
  // the allocator owns the space that is its own QDSet; when borrowing, the
  // group comes from the replica's owner_qdset snapshot.  Built in a reused
  // sorted scratch vector — rounds run on every allocation, and a per-round
  // std::set was one tree-node allocation per member (docs/SCALE.md).
  auto& group = round_group_;
  const auto insert_sorted = [&group](NodeId v) {
    const auto it = std::lower_bound(group.begin(), group.end(), v);
    if (it == group.end() || *it != v) group.insert(it, v);
  };
  group.clear();
  if (txn.owner == txn.allocator) {
    group.assign(a.qdset.begin(), a.qdset.end());  // set order = sorted
    insert_sorted(txn.allocator);
  } else {
    auto rep_it = a.replicas.find(txn.owner);
    if (rep_it == a.replicas.end()) {
      // The replica was dropped mid-transaction (reclamation / RESIGN):
      // the borrowed proposal is void.
      round_failed(txn, /*conflict=*/true);
      return;
    }
    group.assign(rep_it->second.owner_qdset.begin(),
                 rep_it->second.owner_qdset.end());
    insert_sorted(txn.owner);
    insert_sorted(txn.allocator);  // we hold a copy too
  }
  // Hardened mode: expelled peers hold no vote — the revocation was itself
  // a network-wide decision, so every honest allocator excludes the same
  // set and quorum intersection is preserved.  (No-op while nobody is
  // quarantined, which is always the case without an adversary.)
  group.erase(std::remove_if(group.begin(), group.end(),
                             [&](NodeId v) {
                               return v != txn.allocator && is_quarantined(v);
                             }),
              group.end());
  txn.group_size = static_cast<std::uint32_t>(group.size());
  txn.distinguished = group.front();  // lowest-id member (kept sorted)
  txn.distinguished_ok = (txn.distinguished == txn.allocator);

  // Our own copy always votes yes (the lock was taken in propose_next).
  if (txn.owner == txn.allocator) {
    // Latest local timestamp over the proposal.
    for (const auto& r : txn.proposed_block.ranges()) {
      for (std::uint32_t v = r.lo.value();; ++v) {
        txn.latest_ts =
            std::max(txn.latest_ts, a.table.get(IpAddress(v)).timestamp);
        if (v == r.hi.value()) break;
      }
    }
  } else {
    txn.latest_ts = a.replicas.at(txn.owner).table.get(txn.proposed).timestamp;
  }

  for (NodeId v : group) {
    if (v == txn.allocator) continue;
    txn.voters.push_back(v);
  }

  txn.outstanding = 0;
  const std::uint64_t id = txn.id;
  const std::uint32_t round = txn.round;
  if (ctx().tracing_on()) {
    // Child span of "config_txn": same txn id arg ties them together; the
    // QDSet state rides along so a trace shows how the voting group evolved
    // across rounds (quorum adjustment, §V-B).
    txn.obs_round_span = ctx().recorder().begin_span(
        sim().now(), "quorum_round", "qip", txn.allocator,
        {{"txn", id},
         {"round", round},
         {"group_size", txn.group_size},
         {"quorum_needed", quorum_needed(txn)},
         {"distinguished", txn.distinguished},
         {"voters", static_cast<std::uint64_t>(txn.voters.size())}});
  }
  for (NodeId v : txn.voters) {
    if (!alive(v)) continue;
    const AddressBlock proposal = txn.proposed_block;
    if (send(txn.allocator, v, QipMsg::kQuorumClt, Traffic::kConfiguration,
             txn.base_hops,
             [this, v, alloc = txn.allocator, owner = txn.owner, id, round,
              proposal](std::uint64_t h) {
               handle_quorum_clt(v, alloc, owner, id, round, proposal, h);
             },
             txn.proposed_block.to_string())) {
      ++txn.outstanding;
    }
  }

  // Hardened per-round deadline: a stalled round (voters that accepted the
  // CLT but never answer) closes early instead of wedging until
  // txn_timeout, and the silent voters gain suspicion.  Off by default —
  // honest rounds do stall benignly when a voter drifts out of range.
  if (harden_on() && txn.outstanding > 0) {
    txn.round_open = true;
    txn.round_timer = sim().after(
        params_.harden.round_timeout,
        [this, id, round] { harden_round_expired(id, round); });
  }

  // Decide immediately if the quorum is already satisfied (single-head
  // networks, tiny QDSets) or provably unreachable.
  handle_vote(id, round, kNoNode, Vote::kGrant, 0, txn.base_hops);
}

std::uint32_t QipEngine::quorum_needed(const ConfigTxn& txn) const {
  // Confirmations required *including our own copy's vote*.  The group is a
  // symmetric QDSet, so the backend's counting form decides (docs/QUORUM.md).
  return policy().threshold(txn.group_size, txn.distinguished_ok);
}

void QipEngine::handle_quorum_clt(NodeId voter, NodeId allocator,
                                  NodeId owner, std::uint64_t txn_id,
                                  std::uint32_t round,
                                  const AddressBlock& proposal,
                                  std::uint64_t hops_so_far) {
  if (!alive(voter)) return;

  // Silent defection: the voter swallows the CLT — no vote ever comes back,
  // the allocator's round stalls.  Unhardened it wedges until txn_timeout;
  // hardened the round deadline closes it and suspicion accrues.
  if (attack_active(voter, AttackKind::kSilentDefection)) {
    ++adversary_ctl()->stats().dropped_services;
    return;
  }
  // False-conflict flooding: veto every proposal sight unseen.  Each veto
  // makes the allocator surrender the proposed address, so an unhardened
  // allocator bleeds its pool dry; a hardened one cross-checks vetoes
  // against its own table (round_failed) and quarantines the flooder.
  if (attack_active(voter, AttackKind::kConflictFlood)) {
    ++adversary_ctl()->stats().false_conflicts;
    send(voter, allocator, QipMsg::kQuorumCfm, Traffic::kConfiguration,
         hops_so_far,
         [this, txn_id, round, voter](std::uint64_t h) {
           handle_vote(txn_id, round, voter, Vote::kConflict, 0, h);
         },
         "conflict");
    return;
  }

  auto& v = node(voter);

  Vote vote = Vote::kGrant;
  std::uint64_t ts = 0;

  // Find this voter's copy of the owner's space: its own authoritative state
  // when it *is* the owner, else its replica.
  const AddressBlock* free_pool = nullptr;
  const AllocationTable* table = nullptr;
  if (voter == owner) {
    if (v.role == Role::kClusterHead) {
      free_pool = &v.ip_space;
      table = &v.table;
    }
  } else {
    auto it = v.replicas.find(owner);
    if (it != v.replicas.end()) {
      free_pool = &it->second.free_pool;
      table = &it->second.table;
    }
  }

  if (free_pool == nullptr) {
    // No copy: cannot vouch for the proposal.
    vote = Vote::kConflict;
  } else {
    for (const auto& r : proposal.ranges()) {
      for (std::uint32_t x = r.lo.value();; ++x) {
        ts = std::max(ts, table->get(IpAddress(x)).timestamp);
        if (x == r.hi.value()) break;
      }
    }
    if (!free_pool->contains_all(proposal)) {
      vote = Vote::kConflict;
    } else {
      auto lock = v.space_locks.find(owner);
      if (lock != v.space_locks.end() && lock->second.txn_id != txn_id) {
        vote = Vote::kBusy;
      } else {
        // Grant: lend this copy to the transaction until UPD/REL/expiry.
        auto& l = v.space_locks[owner];
        l.txn_id = txn_id;
        l.expiry.cancel();
        l.expiry = sim().after(params_.lock_timeout, [this, voter, owner,
                                                      txn_id] {
          if (!alive(voter)) return;
          auto& st = node(voter);
          auto it = st.space_locks.find(owner);
          if (it != st.space_locks.end() && it->second.txn_id == txn_id) {
            st.space_locks.erase(it);
            pump_pending(voter);  // a waiting local transaction may resume
          }
        });
      }
    }
  }

  send(voter, allocator, QipMsg::kQuorumCfm, Traffic::kConfiguration,
       hops_so_far,
       [this, txn_id, round, voter, vote, ts](std::uint64_t h) {
         handle_vote(txn_id, round, voter, vote, ts, h);
       },
       vote == Vote::kGrant ? "grant" : (vote == Vote::kBusy ? "busy"
                                                             : "conflict"));
}

void QipEngine::handle_vote(std::uint64_t txn_id, std::uint32_t round,
                            NodeId voter, Vote vote, std::uint64_t timestamp,
                            std::uint64_t hops_so_far) {
  auto it = txns_.find(txn_id);
  if (it == txns_.end()) return;
  ConfigTxn& txn = it->second;
  if (round != txn.round) return;  // stale round

  if (voter != kNoNode) {
    QIP_ASSERT(txn.outstanding > 0);
    --txn.outstanding;
    if (harden_on()) {
      txn.responded.insert(voter);
      if (vote == Vote::kConflict) txn.conflict_voters.insert(voter);
    }
    if (ctx().tracing_on()) {
      ctx().recorder().instant(
          sim().now(), "vote", "quorum", voter,
          {{"txn", txn_id}, {"round", round}, {"vote", vote_label(vote)}});
    }
    switch (vote) {
      case Vote::kGrant:
        ++txn.confirms;
        txn.granted.insert(voter);
        txn.latest_ts = std::max(txn.latest_ts, timestamp);
        if (voter == txn.distinguished) txn.distinguished_ok = true;
        break;
      case Vote::kBusy:
        ++txn.busy;
        break;
      case Vote::kConflict:
        ++txn.conflicts;
        txn.latest_ts = std::max(txn.latest_ts, timestamp);
        break;
    }
  }

  const std::uint32_t yes = txn.confirms + 1;  // + our own copy
  if (yes >= quorum_needed(txn)) {
    txn.commit_hops = std::max(txn.base_hops, hops_so_far);
    obs_close_round(ctx().recorder(), sim().now(), txn, "quorum");
    commit_config(txn);
    return;
  }
  if (txn.outstanding == 0) {
    round_failed(txn, txn.conflicts > 0);
  }
}

void QipEngine::round_failed(ConfigTxn& txn, bool conflict) {
  txn.round_timer.cancel();
  txn.round_open = false;
  auto& a = node(txn.allocator);

  // Hardened veto cross-check: when the allocator owns the proposed space
  // and its *own authoritative table* says the address is free, a conflict
  // veto contradicts the one copy that cannot be stale.  Tally suspicion
  // against each vetoer and retry through the busy path instead of
  // surrendering the address — the poisoned-vote path to pool exhaustion.
  // (An honest fresher replica can veto here only transiently, while a
  // borrowed commit races back to the owner; the busy retry absorbs it.)
  if (conflict && harden_on() && !txn.for_cluster_head &&
      txn.owner == txn.allocator && !txn.conflict_voters.empty() &&
      !a.table.allocated(txn.proposed)) {
    for (NodeId cv : txn.conflict_voters)
      add_suspicion(txn.allocator, cv, "veto_contradicts_owner");
    conflict = false;
  }

  obs_close_round(ctx().recorder(), sim().now(), txn,
                  conflict ? "conflict" : "busy");
  release_grants(txn);

  if (conflict) {
    // The read found the proposal (partly) taken somewhere fresher: drop the
    // proposal from our pools and try the next address.
    if (!txn.for_cluster_head) {
      if (txn.owner == txn.allocator) {
        if (a.ip_space.contains(txn.proposed)) a.ip_space.erase(txn.proposed);
      } else {
        auto it = a.replicas.find(txn.owner);
        if (it != a.replicas.end() &&
            it->second.free_pool.contains(txn.proposed)) {
          it->second.free_pool.erase(txn.proposed);
        }
      }
    }
    // Release our own lock on the owner's space before re-proposing.
    auto lock = a.space_locks.find(txn.owner);
    if (lock != a.space_locks.end() && lock->second.txn_id == txn.id)
      a.space_locks.erase(lock);
    if (propose_next(txn)) {
      start_quorum_round(txn);
      return;
    }
    if (agent_forward(txn)) return;
    finish_config_failure(txn);
    return;
  }

  // Contention or unreachable voters: back off and retry the same proposal;
  // quorum adjustment (§V-B) may shrink the group meanwhile.
  if (txn.busy_retries < params_.max_busy_retries) {
    ++txn.busy_retries;
    const std::uint64_t id = txn.id;
    sim().post(params_.busy_backoff, [this, id] {
      auto it = txns_.find(id);
      if (it == txns_.end()) return;
      if (!is_head(it->second.allocator)) {
        finish_config_failure(it->second);  // allocator died mid-transaction
        return;
      }
      start_quorum_round(it->second);
    });
    return;
  }
  finish_config_failure(txn);
}

void QipEngine::release_grants(ConfigTxn& txn) {
  for (NodeId v : txn.granted) {
    if (!alive(v)) continue;
    const NodeId owner = txn.owner;
    const std::uint64_t id = txn.id;
    send(txn.allocator, v, QipMsg::kQuorumRel, Traffic::kConfiguration, 0,
         [this, v, owner, id](std::uint64_t) {
           if (!alive(v)) return;
           auto& st = node(v);
           auto it = st.space_locks.find(owner);
           if (it != st.space_locks.end() && it->second.txn_id == id) {
             it->second.expiry.cancel();
             st.space_locks.erase(it);
             pump_pending(v);
           }
         });
  }
  txn.granted.clear();
}

// ---------------------------------------------------------------------------
// Commit
// ---------------------------------------------------------------------------

void QipEngine::commit_config(ConfigTxn& txn) {
  auto& a = node(txn.allocator);
  const NodeId requestor = txn.requestor;
  const NetworkId net_id = a.network_id;

  // Hardened veto cross-check, commit side: the quorum granted the very
  // address this voter vetoed.  Quorum redundancy absorbs a minority of
  // false vetoes without failing the round, so a flooder below the blocking
  // threshold would otherwise stay invisible forever — but a veto
  // contradicted by the committed grant is exactly as suspect as one
  // contradicted by the owner's table in round_failed.  (An honest veto can
  // land here only through a stale replica racing a borrowed commit;
  // the suspicion threshold absorbs those.)
  if (harden_on()) {
    for (NodeId cv : txn.conflict_voters)
      add_suspicion(txn.allocator, cv, "veto_contradicts_commit");
  }

  if (txn.for_cluster_head) {
    // Transfer the upper half of our IPSpace to the new head.  Re-validate
    // at commit time: a voter-lock expiry can let state move under a slow
    // round, in which case this is just a conflict and we re-propose.
    QIP_ASSERT(txn.owner == txn.allocator);
    if (!a.ip_space.contains_all(txn.proposed_block)) {
      round_failed(txn, /*conflict=*/true);
      return;
    }
    a.ip_space.erase_all(txn.proposed_block);
    a.owned_universe.erase_all(txn.proposed_block);
    ++a.version;
    replicate_update(txn.allocator, txn.allocator, Traffic::kConfiguration,
                     txn.id);
    const AddressBlock block = txn.proposed_block;
    const std::uint64_t hops = txn.commit_hops;
    const std::uint32_t attempts = txn.attempt;
    if (!send(txn.allocator, requestor, QipMsg::kChCfg,
              Traffic::kConfiguration, hops,
              [this, requestor, alloc = txn.allocator, block, net_id,
               attempts](std::uint64_t h) {
                complete_head(requestor, alloc, block, net_id, h, attempts);
              },
              block.to_string())) {
      // Requestor unreachable at hand-over: the block stays with us.
      a.ip_space.merge(block);
      a.owned_universe.merge(block);
      ++a.version;
      replicate_update(txn.allocator, txn.allocator, Traffic::kConfiguration);
      txn.obs_outcome = "handover_failed";
    } else {
      txn.obs_outcome = "committed";
    }
    end_txn(txn);
    return;
  }

  const IpAddress addr = txn.proposed;
  if (txn.owner == txn.allocator) {
    if (!a.ip_space.contains(addr)) {
      round_failed(txn, /*conflict=*/true);  // state moved under the round
      return;
    }
    a.table.commit_allocate(addr, requestor, txn.latest_ts);
    a.ip_space.erase(addr);
    ++a.version;
    replicate_update(txn.allocator, txn.allocator, Traffic::kConfiguration,
                     txn.id);
  } else {
    // Borrowed commit: update our replica, then propagate through the owner
    // when reachable, else directly to the surviving replica group.
    auto rep_it = a.replicas.find(txn.owner);
    if (rep_it == a.replicas.end()) {
      round_failed(txn, /*conflict=*/true);
      return;
    }
    auto& rep = rep_it->second;
    if (!rep.free_pool.contains(addr) || rep.table.allocated(addr)) {
      round_failed(txn, /*conflict=*/true);
      return;
    }
    const AddressRecord rec = rep.table.commit_allocate(addr, requestor,
                                                        txn.latest_ts);
    if (rep.free_pool.contains(addr)) rep.free_pool.erase(addr);
    // Versions are minted by the owner only (they gate structural state —
    // universe and QDSet); a holder-side commit travels via the record's
    // timestamp, never by outbidding the owner's version.
    const NodeId owner = txn.owner;
    const std::uint64_t txn_id = txn.id;
    bool via_owner = false;
    if (alive(owner) && is_head(owner)) {
      via_owner = send(
          txn.allocator, owner, QipMsg::kQuorumUpd, Traffic::kConfiguration, 0,
          [this, owner, addr, rec, requestor, txn_id](std::uint64_t) {
            if (!is_head(owner)) return;
            auto& o = node(owner);
            o.table.adopt_if_newer(addr, rec);
            if (o.ip_space.contains(addr) && o.table.allocated(addr))
              o.ip_space.erase(addr);
            auto lock = o.space_locks.find(owner);
            if (lock != o.space_locks.end() && lock->second.txn_id == txn_id) {
              lock->second.expiry.cancel();
              o.space_locks.erase(lock);
              pump_pending(owner);
            }
            replicate_update(owner, owner, Traffic::kConfiguration);
          },
          addr.to_string());
    }
    if (!via_owner) {
      // Owner gone: push our replica snapshot to its surviving group.
      replicate_update(txn.allocator, owner, Traffic::kConfiguration, txn.id);
    }
  }

  const std::uint64_t hops = txn.commit_hops;
  const std::uint32_t attempts = txn.attempt;
  if (!send(txn.allocator, requestor, QipMsg::kComCfg, Traffic::kConfiguration,
            hops,
            [this, requestor, alloc = txn.allocator, addr, net_id,
             attempts](std::uint64_t h) {
              complete_common(requestor, alloc, addr, net_id, h, attempts);
            },
            addr.to_string())) {
    // Requestor vanished before configuration: free the address again.
    free_owned_address(txn.owner == txn.allocator ? txn.allocator : txn.owner,
                       addr, Traffic::kConfiguration);
    txn.obs_outcome = "handover_failed";
  } else {
    txn.obs_outcome = "committed";
  }
  end_txn(txn);
}

void QipEngine::complete_common(NodeId id, NodeId allocator, IpAddress addr,
                                NetworkId network_id, std::uint64_t total_hops,
                                std::uint32_t attempts) {
  if (!alive(id)) return;
  auto& st = node(id);
  if (st.role != Role::kUnconfigured) return;  // duplicate delivery guard
  st.role = Role::kCommonNode;
  st.ip = addr;
  st.configurer = allocator;
  st.administrator = kNoNode;
  st.network_id = network_id;
  if (clusters_.is_head(allocator)) clusters_.set_member(id, allocator);

  auto& rec = record_for(id);
  rec.success = true;
  rec.address = addr;
  rec.latency_hops = total_hops;
  rec.attempts = attempts;
  rec.completed_at = sim().now();
  ++config_successes_;

  send(id, allocator, QipMsg::kComAck, Traffic::kConfiguration, 0,
       [](std::uint64_t) {});
}

void QipEngine::complete_head(NodeId id, NodeId allocator, AddressBlock block,
                              NetworkId network_id, std::uint64_t total_hops,
                              std::uint32_t attempts) {
  if (!alive(id)) return;
  auto& st = node(id);
  if (st.role != Role::kUnconfigured) return;
  st.role = Role::kClusterHead;
  st.owned_universe = block;
  st.ip_space = block;
  const IpAddress self_ip = st.ip_space.pop_lowest();
  st.ip = self_ip;
  st.table.commit_allocate(self_ip, id, 0);
  st.version = 1;
  st.configurer = allocator;
  st.network_id = network_id;
  clusters_.set_head(id);

  auto& rec = record_for(id);
  rec.success = true;
  rec.address = self_ip;
  rec.latency_hops = total_hops;
  rec.attempts = attempts;
  rec.completed_at = sim().now();
  ++config_successes_;

  if (ctx().tracing_on()) {
    ctx().recorder().instant(
        sim().now(), "head_elected", "cluster", id,
        {{"first", std::uint32_t{0}},
         {"universe", static_cast<std::uint64_t>(st.owned_universe.size())},
         {"allocator", allocator}});
  }

  send(id, allocator, QipMsg::kChAck, Traffic::kConfiguration, 0,
       [](std::uint64_t) {});

  // Build the QDSet and distribute replicas (§IV-A, §V-B).
  join_qdsets(id);
}

void QipEngine::join_qdsets(NodeId new_head) {
  auto heads = clusters_.heads_within(new_head, params_.qdset_radius);
  for (NodeId h : heads) {
    if (!alive(h)) continue;
    add_qdset_link(new_head, h, Traffic::kConfiguration);
  }
}

void QipEngine::end_txn(ConfigTxn& txn) {
  const std::uint64_t id = txn.id;
  const NodeId allocator = txn.allocator;
  txn.retry_timer.cancel();
  txn.round_timer.cancel();
  // A round abandoned without resolving (txn timeout) closes here.
  obs_close_round(ctx().recorder(), sim().now(), txn, "abort");
  if (txn.obs_span != 0) {
    ctx().recorder().end_span(
        sim().now(), txn.obs_span, "config_txn", "qip", allocator,
        {{"outcome", txn.obs_outcome},
         {"attempts", txn.attempt},
         {"rounds", txn.round}});
    txn.obs_span = 0;
  }
  if (alive(allocator)) {
    auto& a = node(allocator);
    if (a.active_txn == id) a.active_txn = 0;
    // Drop any self locks still held by this transaction.
    for (auto it = a.space_locks.begin(); it != a.space_locks.end();) {
      if (it->second.txn_id == id) {
        it->second.expiry.cancel();
        it = a.space_locks.erase(it);
      } else {
        ++it;
      }
    }
  }
  txns_.erase(id);
  if (alive(allocator)) {
    sim().after(0.0, [this, allocator] { pump_pending(allocator); });
  }
}

void QipEngine::finish_config_failure(ConfigTxn& txn) {
  txn.obs_outcome = "failed";
  release_grants(txn);
  const NodeId requestor = txn.requestor;
  ++config_failures_;
  // A failing transaction only counts against a requestor that is still
  // unconfigured — a duplicate request (retry racing the original) must not
  // overwrite the successful record.
  if (alive(requestor) &&
      node(requestor).role == Role::kUnconfigured) {
    auto& rec = record_for(requestor);
    if (!rec.success) {
      rec.attempts = txn.attempt;
      rec.completed_at = sim().now();
    }
    // The requestor retries from scratch after a backoff (it may pick a
    // different allocator by then).
    auto& rs = node(requestor);
    if (rs.entry_retries < params_.max_entry_retries) {
      ++rs.entry_retries;
      sim().post(params_.entry_retry_backoff,
                  [this, requestor] { start_configuration(requestor); });
    }
  }
  // An allocator that cannot satisfy requests even via QuorumSpace starts
  // address reclamation for vanished heads it still holds replicas of
  // (§IV-D: "or running out of IP addresses in both IPSpace and
  // QuorumSpace").
  if (alive(txn.allocator)) {
    auto& a = node(txn.allocator);
    if (a.visible_free() == 0) {
      for (const auto& [owner, rep] : a.replicas) {
        if (!alive(owner) && !reclaims_.count(owner)) {
          start_reclamation(txn.allocator, owner);
          break;
        }
      }
    }
  }
  end_txn(txn);
}

// ---------------------------------------------------------------------------
// Replica snapshots / write rounds
// ---------------------------------------------------------------------------

ReplicaCopy QipEngine::snapshot_space(NodeId source, NodeId owner) const {
  const auto& s = node(source);
  ReplicaCopy copy;
  copy.owner = owner;
  if (source == owner) {
    copy.universe = s.owned_universe;
    copy.free_pool = s.ip_space;
    copy.table = s.table;
    copy.version = s.version;
    copy.owner_qdset = s.qdset;
  } else {
    copy = s.replicas.at(owner);
  }
  return copy;
}

void QipEngine::adopt_replica(NodeId holder, const ReplicaCopy& snapshot,
                              NodeId source) {
  if (!alive(holder)) return;
  auto& h = node(holder);
  if (h.role != Role::kClusterHead) return;
  // Hardened: a first-time replica must come from its owner (QD_JOIN /
  // QD_WELCOME do); adopting a stranger's copy wholesale would hand a
  // poisoner a blank slate.  Existing replicas reconcile below, where
  // non-owner demotions are verified record by record.
  if (params_.harden.enabled && source != snapshot.owner &&
      !h.replicas.count(snapshot.owner)) {
    return;
  }

  // Self-healing stewardship: if the arriving snapshot claims addresses we
  // also believe we own (a reclamation raced the owner across a partition),
  // both sides apply the same deterministic rule — newest record wins, ties
  // go to the smaller id — so contact alone reconverges stewardship.
  if (snapshot.owner != holder &&
      !h.owned_universe.disjoint_with(snapshot.universe)) {
    const AddressBlock overlap =
        h.owned_universe.minus(h.owned_universe.minus(snapshot.universe));
    for (const auto& r : overlap.ranges()) {
      for (std::uint32_t v = r.lo.value();; ++v) {
        const IpAddress addr(v);
        const auto mine = h.table.get(addr);
        const auto theirs = snapshot.table.get(addr);
        const bool i_win = mine.timestamp > theirs.timestamp ||
                           (mine.timestamp == theirs.timestamp &&
                            holder < snapshot.owner);
        if (!i_win) {
          h.owned_universe.erase(addr);
          if (h.ip_space.contains(addr)) h.ip_space.erase(addr);
          h.table.erase(addr);
          ++h.version;
        }
        if (v == r.hi.value()) break;
      }
    }
  }

  auto [it, fresh] = h.replicas.try_emplace(snapshot.owner, snapshot);
  if (fresh) return;
  ReplicaCopy& mine = it->second;
  // Reconcile rather than replace: structural fields (universe, QDSet) come
  // from the newer version, per-address records merge by timestamp so a
  // stale snapshot can never roll back a committed allocation.
  if (snapshot.version > mine.version) {
    mine.universe = snapshot.universe;
    mine.owner_qdset = snapshot.owner_qdset;
    mine.version = snapshot.version;
  }
  if (params_.harden.enabled && source != snapshot.owner) {
    // Hardened holder-side merge: promotions (new allocations) are adopted
    // as usual, but a non-owner snapshot demoting an allocated record to
    // free is checked with the owner — the one copy that cannot be rolled
    // back — before being believed.  One charged round trip per demotion;
    // a contradicted demotion is stripped and earns the sender suspicion.
    const NodeId owner = snapshot.owner;
    const bool owner_up = alive(owner) && is_head(owner) &&
                          topology().has_node(owner) &&
                          topology().reachable(holder, owner);
    for (IpAddress a : snapshot.table.known_addresses()) {
      const AddressRecord theirs = snapshot.table.get(a);
      const AddressRecord ours = mine.table.get(a);
      if (theirs.timestamp <= ours.timestamp) continue;
      const bool demotes = ours.status == AddressStatus::kAllocated &&
                           theirs.status != AddressStatus::kAllocated;
      if (demotes && owner_up) {
        const auto d = topology().hop_distance(holder, owner);
        if (d) {
          transport().stats().record(Traffic::kMaintenance, 2ULL * *d, 2);
          if (node(owner).table.allocated(a)) {
            add_suspicion(holder, source, "false_demotion");
            continue;
          }
        }
      }
      mine.table.install(a, theirs);
    }
  } else {
    mine.table.merge_newer(snapshot.table);
  }
  mine.free_pool = derive_free_pool(mine.universe, mine.table);
}

void QipEngine::replicate_update(NodeId source, NodeId owner, Traffic traffic,
                                 std::uint64_t txn_id) {
  if (!alive(source)) return;
  push_snapshot(source, snapshot_space(source, owner), traffic, txn_id);
}

void QipEngine::push_snapshot(NodeId source, const ReplicaCopy& snapshot,
                              Traffic traffic, std::uint64_t txn_id) {
  const NodeId owner = snapshot.owner;
  // Recipients: the owner's replica group as the source knows it.
  std::set<NodeId> group = snapshot.owner_qdset;
  if (source != owner && alive(owner)) group.insert(owner);
  for (NodeId h : group) {
    if (h == source || !alive(h)) continue;
    send(source, h, QipMsg::kQuorumUpd, traffic, 0,
         [this, h, snapshot, owner, source, txn_id](std::uint64_t) {
           if (!alive(h)) return;
           // Hardened: an expelled peer's snapshots are discarded unread.
           if (params_.harden.enabled && is_quarantined(source)) return;
           auto& st = node(h);
           if (h == owner && st.role == Role::kClusterHead) {
             // The owner itself reconciles the fresher view of its own
             // space: structure from the newer version, records by
             // timestamp (no wholesale replace, so its own committed
             // updates survive).
             if (snapshot.version > st.version) {
               st.owned_universe = snapshot.universe;
               st.version = snapshot.version;
             }
             if (params_.harden.enabled && source != owner) {
               merge_table_hardened(h, source, snapshot.table);
             } else {
               st.table.merge_newer(snapshot.table);
             }
             st.ip_space = derive_free_pool(st.owned_universe, st.table);
           } else {
             adopt_replica(h, snapshot, source);
           }
           if (txn_id != 0) {
             auto lock = st.space_locks.find(owner);
             if (lock != st.space_locks.end() &&
                 lock->second.txn_id == txn_id) {
               lock->second.expiry.cancel();
               st.space_locks.erase(lock);
               pump_pending(h);
             }
           }
         });
  }
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

double QipEngine::average_qdset_size() const {
  double sum = 0;
  std::size_t n = 0;
  nodes_.for_each([&](NodeId, const QipNodeState& st) {
    if (st.role != Role::kClusterHead) return;
    sum += static_cast<double>(st.qdset.size());
    ++n;
  });
  return n ? sum / static_cast<double>(n) : 0.0;
}

double QipEngine::average_visible_space() const {
  double sum = 0;
  std::size_t n = 0;
  nodes_.for_each([&](NodeId, const QipNodeState& st) {
    if (st.role != Role::kClusterHead) return;
    sum += static_cast<double>(st.visible_free());
    ++n;
  });
  return n ? sum / static_cast<double>(n) : 0.0;
}

double QipEngine::average_own_space() const {
  double sum = 0;
  std::size_t n = 0;
  nodes_.for_each([&](NodeId, const QipNodeState& st) {
    if (st.role != Role::kClusterHead) return;
    sum += static_cast<double>(st.ip_space.size());
    ++n;
  });
  return n ? sum / static_cast<double>(n) : 0.0;
}

std::map<NodeId, IpAddress> QipEngine::configured_addresses() const {
  std::map<NodeId, IpAddress> out;
  nodes_.for_each([&](NodeId id, const QipNodeState& st) {
    if (st.ip) out.emplace(id, *st.ip);
  });
  return out;
}

}  // namespace qip
