// QipEngine: network partition and merging (§V-C).
//
// Every node carries the id of its logical network (the lowest IP present
// when the network formed, inherited at configuration).  A merge is detected
// when two adjacent nodes carry different ids: the network with the larger
// id dissolves and its nodes rejoin the other network one by one through the
// ordinary configuration flow.  A cluster head isolated from every other
// head regains the full pool and starts a fresh network for its members.
#include "core/qip_engine.hpp"

#include "sim/sim_context.hpp"
#include "util/logging.hpp"

namespace qip {

void QipEngine::merge_scan() {
  // Detect one boundary per tick (hello exchange carries the network id);
  // remaining boundaries surface on later ticks.  Two different pools
  // (distinct epoch nonces) merge by dissolving the larger-id network; two
  // sides of one healed pool (same nonce) reconcile in place — their
  // address blocks are fragments of the same space and must not evaporate.
  nodes_.scan([&](NodeId id, const QipNodeState& st) {
    if (st.role == Role::kUnconfigured || !topology().has_node(id))
      return false;
    for (NodeId nb : topology().neighbors_view(id)) {
      if (!alive(nb)) continue;
      const auto& other = node(nb);
      if (other.role == Role::kUnconfigured) continue;
      if (other.network_id == st.network_id) {
        if (!params_.heal_on_conflict_evidence) continue;
        // Same network id: the ids never diverged, but a reclamation may
        // still have re-issued an address a stranded node holds (the
        // stranded side kept the network's lowest IP in sight, so no
        // boundary ever forms).  The hello exchange cross-checks claims;
        // three pieces of hard evidence — each impossible while the quorum
        // invariants hold — trigger the same component-wide freshness
        // reconciliation a heal runs:
        const bool same_ip = st.ip && other.ip && *st.ip == *other.ip;
        bool stale_claim = false;
        if (st.role == Role::kClusterHead && other.ip &&
            st.owned_universe.contains(*other.ip)) {
          const auto rec = st.table.get(*other.ip);
          stale_claim =
              rec.status == AddressStatus::kAllocated && rec.holder != nb;
        }
        const bool overlap =
            st.role == Role::kClusterHead &&
            other.role == Role::kClusterHead &&
            !st.owned_universe.disjoint_with(other.owned_universe);
        if (same_ip || stale_claim || overlap) {
          heal_partition(id);
          return true;
        }
        continue;
      }
      if (other.network_id.nonce == st.network_id.nonce) {
        heal_partition(id);
        return true;
      }
      const NetworkId winner = std::min(st.network_id, other.network_id);
      const NetworkId loser = std::max(st.network_id, other.network_id);
      const NodeId detector = st.network_id == winner ? id : nb;
      absorb_network(detector, winner, loser);
      return true;
    }
    return false;
  });
}

void QipEngine::heal_partition(NodeId detector) {
  // Two partitions of one pool reconnected (§V-C).  Quorum voting kept the
  // two sides from double-allocating, but a majority-side reclamation may
  // have re-issued an address a stranded minority node still holds, and two
  // heads may both believe they own a reclaimed block.  The sides exchange
  // allocation tables (one component flood) and resolve every conflict by
  // the freshest timestamp; losing holders reconfigure.
  ++merges_handled_;
  if (!topology().has_node(detector)) return;
  if (ctx().tracing_on()) {
    ctx().recorder().instant(sim().now(), "partition_heal",
                                           "cluster", detector);
  }
  transport().flood_component_view(detector, Traffic::kPartition,
                              [](NodeId, std::uint32_t) {});
  trace(QipMsg::kMergePoll, detector, kNoNode, 0, "partition heal");

  const auto& component = topology().component_view(detector);
  std::vector<NodeId> heads;
  for (NodeId id : component) {
    if (is_head(id)) heads.push_back(id);
  }

  // 1. Steward conflicts: two heads whose universes overlap.  Per address,
  // the newer record wins; the loser drops the address entirely.
  for (std::size_t i = 0; i < heads.size(); ++i) {
    for (std::size_t j = i + 1; j < heads.size(); ++j) {
      auto& a = node(heads[i]);
      auto& b = node(heads[j]);
      if (a.owned_universe.disjoint_with(b.owned_universe)) continue;
      const AddressBlock overlap =
          a.owned_universe.minus(a.owned_universe.minus(b.owned_universe));
      transport().stats().record(Traffic::kPartition, 2, 2);  // table swap
      for (const auto& r : overlap.ranges()) {
        for (std::uint32_t v = r.lo.value();; ++v) {
          const IpAddress addr(v);
          const auto ra = a.table.get(addr);
          const auto rb = b.table.get(addr);
          // Tie-break by id so the outcome is deterministic.
          const bool a_wins = ra.timestamp > rb.timestamp ||
                              (ra.timestamp == rb.timestamp &&
                               heads[i] < heads[j]);
          auto& loser = a_wins ? b : a;
          loser.owned_universe.erase(addr);
          if (loser.ip_space.contains(addr)) loser.ip_space.erase(addr);
          loser.table.erase(addr);
          ++loser.version;
          if (v == r.hi.value()) break;
        }
      }
    }
  }

  // 2. Holder conflicts: a configured node whose address the (single)
  // steward has re-issued or freed must acquire a new address.
  for (NodeId id : component) {
    if (!alive(id)) continue;
    auto& st = node(id);
    if (!st.ip || st.role == Role::kUnconfigured) continue;
    NodeId steward = kNoNode;
    for (NodeId h : heads) {
      if (alive(h) && node(h).owned_universe.contains(*st.ip)) {
        steward = h;
        break;  // universes are disjoint after step 1
      }
    }
    if (steward == kNoNode) continue;  // stewardless: no conflict possible
    const auto rec = node(steward).table.get(*st.ip);
    if (rec.status == AddressStatus::kAllocated && rec.holder == id) continue;
    if (rec.status == AddressStatus::kFree) {
      // Not a conflict: a write round still in flight, or a reclamation
      // that freed a stranded member's address without re-issuing it.  The
      // steward simply reinstates the record (one repair exchange).
      auto& sw = node(steward);
      sw.table.commit_allocate(*st.ip, id, rec.timestamp);
      if (sw.ip_space.contains(*st.ip)) sw.ip_space.erase(*st.ip);
      ++sw.version;
      transport().stats().record(Traffic::kPartition, 2, 2);
      continue;
    }
    // Allocated to someone else: the stranded copy loses and reconfigures.
    if (st.role == Role::kClusterHead) {
      // A head that lost its own identity address dissolves and rejoins;
      // its remaining universe returns to the steward.
      const ReplicaCopy payload = snapshot_space(id, id);
      auto& sw = node(steward);
      const AddressBlock fresh = payload.universe.minus(sw.owned_universe);
      sw.owned_universe.merge(fresh);
      sw.table.merge_newer(payload.table);
      sw.ip_space = derive_free_pool(sw.owned_universe, sw.table);
      ++sw.version;
      clusters_.remove(id);
    } else {
      clusters_.remove(id);
    }
    st.cancel_timers();
    st = QipNodeState{};
    const NodeId reentry = id;
    sim().post(0.1, [this, reentry] {
      if (!alive(reentry) || !topology().has_node(reentry)) return;
      // An in-flight configuration may have landed meanwhile.
      if (node(reentry).role != Role::kUnconfigured) return;
      auto& rec2 = record_for(reentry);
      rec2 = ConfigRecord{};
      rec2.requested_at = sim().now();
      start_configuration(reentry);
    });
  }

  // 3. Unify the network id across the healed epoch group (the refresh
  // would do it next tick; doing it now stops repeated heal detections).
  if (!alive(detector)) return;
  const std::uint64_t nonce = node(detector).network_id.nonce;
  std::optional<IpAddress> low;
  for (NodeId id : component) {
    if (!alive(id)) continue;
    const auto& st = node(id);
    if (st.role == Role::kUnconfigured || !st.ip) continue;
    if (st.network_id.nonce != nonce) continue;
    if (!low || *st.ip < *low) low = *st.ip;
  }
  if (low) {
    for (NodeId id : component) {
      if (!alive(id)) continue;
      auto& st = node(id);
      if (st.role == Role::kUnconfigured || !st.ip) continue;
      if (st.network_id.nonce == nonce) st.network_id.low = *low;
    }
  }
}

void QipEngine::absorb_network(NodeId detector, NetworkId winner_id,
                               NetworkId loser_id) {
  ++merges_handled_;
  QIP_INFO << "merge detected by node " << detector << ": network "
           << loser_id << " joins network " << winner_id;

  // The detector floods a merge poll so every node of the losing network
  // learns it must reconfigure (§V-C: "all the nodes in the network with the
  // larger network ID are required to acquire new IP addresses").
  // Only losers in the detector's component reconfigure — nodes of the
  // losing network that are out of reach cannot hear the merge flood and
  // will be detected at their own boundary when they come back.
  std::set<NodeId> reachable;
  if (topology().has_node(detector)) {
    const auto& comp = topology().component_view(detector);
    reachable.insert(comp.begin(), comp.end());
  }
  std::vector<NodeId> losers;
  nodes_.for_each([&](NodeId id, const QipNodeState& st) {
    if (st.role == Role::kUnconfigured) return;
    if (st.network_id == loser_id && reachable.count(id))
      losers.push_back(id);
  });
  if (losers.empty()) return;
  if (ctx().tracing_on()) {
    ctx().recorder().instant(
        sim().now(), "network_merge", "cluster", detector,
        {{"losers", static_cast<std::uint64_t>(losers.size())}});
  }
  transport().flood_component_view(detector, Traffic::kPartition,
                              [](NodeId, std::uint32_t) {});
  trace(QipMsg::kMergePoll, detector, kNoNode, 0, "merge flood");

  // Dissolve the losing network: heads first drop their head state (their
  // address space belongs to the dissolved network), then everyone rejoins
  // one by one, staggered so configurations serialize naturally.
  SimTime stagger = 0.0;
  for (NodeId id : losers) {
    auto& st = node(id);
    if (st.role == Role::kClusterHead) clusters_.remove(id);
    else if (st.role == Role::kCommonNode) clusters_.remove(id);
    st.cancel_timers();
    st = QipNodeState{};
    stagger += 0.05;
    sim().post(stagger, [this, id] {
      if (!alive(id) || !topology().has_node(id)) return;
      // An in-flight configuration may have landed meanwhile.
      if (node(id).role != Role::kUnconfigured) return;
      auto& rec = record_for(id);
      rec = ConfigRecord{};
      rec.requested_at = sim().now();
      start_configuration(id);
    });
  }
}

void QipEngine::isolated_head_recovery(NodeId head) {
  // §V-C "isolated cluster head": partitioned from all other heads, unable
  // to assemble any quorum.  It becomes the first head of a fresh network,
  // regains the whole pool and reconfigures its surviving members.
  auto& st = node(head);
  QIP_ASSERT(st.role == Role::kClusterHead);
  QIP_INFO << "head " << head << " isolated; restarting as a fresh network";
  if (ctx().tracing_on()) {
    ctx().recorder().instant(sim().now(), "isolated_head_recovery",
                                           "cluster", head);
  }

  st.qdset.clear();
  st.replicas.clear();
  st.suspect_timers.clear();
  st.probe_timers.clear();
  st.owned_universe =
      AddressBlock::contiguous(params_.pool_base, params_.pool_size);
  st.ip_space = st.owned_universe;
  st.table = AllocationTable{};
  const IpAddress self_ip = st.ip_space.pop_lowest();
  st.ip = self_ip;
  st.table.commit_allocate(self_ip, head, 0);
  ++st.version;
  st.network_id = NetworkId{self_ip, rng().next()};
  st.configurer = head;

  // Reconfigure reachable members with fresh addresses (two-hop exchange
  // each, charged to partition traffic).
  for (NodeId m : clusters_.members_of(head)) {
    if (!alive(m) || !topology().has_node(m)) continue;
    if (!topology().reachable(head, m)) continue;
    if (st.ip_space.empty()) break;
    const IpAddress addr = st.ip_space.pop_lowest();
    st.table.commit_allocate(addr, m, 0);
    ++st.version;
    send(head, m, QipMsg::kComCfg, Traffic::kPartition, 0,
         [this, m, head, addr, net = st.network_id](std::uint64_t) {
           if (!alive(m)) return;
           auto& ms = node(m);
           if (ms.role != Role::kCommonNode) return;
           ms.ip = addr;
           ms.configurer = head;
           ms.administrator = kNoNode;
           ms.network_id = net;
           auto& rec = record_for(m);
           rec.success = true;
           rec.address = addr;
         },
         addr.to_string());
  }
}

}  // namespace qip
