// QipEngine: adversary interpretation and protocol hardening.
//
// Two halves, deliberately in one translation unit so the attack and the
// defense stay reviewable side by side (threat model: docs/ADVERSARY.md):
//
//   * The adversary half *executes* an AdversaryPlan: once per hello tick
//     the engine asks the context's AdversaryController who is attacking
//     and performs the discrete actions (a squat fires once per window, a
//     poison push repeats every tick).  The reactive attacks — false
//     conflict votes, silent defection — live inline in the vote/service
//     handlers and only consult attack_active() here.
//   * The hardening half implements the defenses gated by
//     QipParams::harden: per-round deadlines with suspicion for silent
//     voters, owner-verified demotions against replica poisoning,
//     challenge/ack probing of squatted addresses, and network-wide
//     quarantine once any evidence threshold is crossed.
//
// Everything here is null-gated: with no adversary attached and hardening
// off, the only residue on an honest run is one pointer check per hook —
// runs are byte-identical to a build that never had this file.
//
// Epistemic note: perform_squat() and detect_squats() scan `nodes_`
// directly.  For the attacker that is by design (an attacker cheats; it
// does not run the protocol to learn a victim).  For the detector it models
// hello gossip: a head hears the (address, network id) claims of every node
// within its beacon horizon each interval, which is exactly the knowledge
// detect_squats consumes — reading it from the state map just skips the
// per-beacon bookkeeping the aggregate hello model already elides.
#include <algorithm>

#include "core/qip_engine.hpp"
#include "fault/adversary.hpp"
#include "net/failure_detector.hpp"
#include "sim/sim_context.hpp"
#include "util/logging.hpp"

namespace qip {

// ---------------------------------------------------------------------------
// Adversary plumbing
// ---------------------------------------------------------------------------

AdversaryController* QipEngine::adversary_ctl() const {
  AdversaryController* a = ctx().adversary();
  return (a != nullptr && a->active()) ? a : nullptr;
}

bool QipEngine::attack_active(NodeId id, AttackKind kind) const {
  AdversaryController* a = adversary_ctl();
  return a != nullptr && a->is(id, kind, transport().sim().now());
}

bool QipEngine::serves_probes(NodeId id) const {
  if (!alive(id) || !topology().has_node(id)) return false;
  if (!transport().radio_up(id)) return false;
  const QipNodeState& st = nodes_.at(id);
  if (st.role == Role::kUnconfigured) return false;
  // The defining trait of silent defection: beacons continue, service stops.
  return !attack_active(id, AttackKind::kSilentDefection);
}

void QipEngine::set_failure_detector(FailureDetector* detector) {
  detector_ = detector;
  if (detector_ == nullptr) return;
  if (auto* ht = dynamic_cast<HelloTimeoutDetector*>(detector_)) {
    // Beacon evidence: hellos are delivered in aggregate (hello_tick), so
    // "heard" is exactly what the per-beacon model would conclude — the
    // peer is configured, placed, radio up and reachable.  Note a silent
    // defector satisfies all four: this detector cannot catch it.
    ht->set_heard([this](NodeId observer, NodeId peer) {
      return alive(peer) && nodes_.at(peer).role != Role::kUnconfigured &&
             topology().has_node(peer) && transport().radio_up(peer) &&
             topology().reachable(observer, peer);
    });
  }
  if (auto* sw = dynamic_cast<SwimDetector*>(detector_)) {
    sw->set_responder([this](NodeId target) { return serves_probes(target); });
  }
}

// ---------------------------------------------------------------------------
// Attack execution (driven from hello_tick)
// ---------------------------------------------------------------------------

void QipEngine::run_adversary_tick() {
  AdversaryController* a = adversary_ctl();
  if (a == nullptr) return;
  const SimTime now = sim().now();

  // Squats are discrete: once per (node, window), via the claim_once latch.
  for (NodeId n : a->attackers(AttackKind::kSquat, now)) {
    if (!alive(n) || !topology().has_node(n) || is_quarantined(n)) continue;
    if (a->claim_once(n, AttackKind::kSquat, now)) perform_squat(n);
  }

  // Poison pushes repeat every tick the window is open, mimicking the
  // replica-refresh cadence so the corruption keeps re-arriving even after
  // an honest owner overwrites it.
  for (NodeId n : a->attackers(AttackKind::kReplicaPoison, now)) {
    if (!is_head(n) || !topology().has_node(n) || is_quarantined(n)) continue;
    perform_poison(n);
  }
}

bool QipEngine::perform_squat(NodeId attacker) {
  auto& st = node(attacker);
  // Victim: the lowest address currently held by another placed node —
  // deterministic, and the lowest address is disproportionately often a
  // network id carrier, which maximises the blast radius.
  NodeId victim = kNoNode;
  std::optional<IpAddress> stolen;
  nodes_.for_each([&](NodeId id, const QipNodeState& other) {
    if (id == attacker || !other.ip) return;
    if (other.role == Role::kUnconfigured) return;
    if (!topology().has_node(id)) return;
    // A realistic squatter learned the address from beacons it can hear:
    // the victim must be in the attacker's component (it is also what makes
    // the duplicate observable — cross-component conflicts are legitimate).
    if (!topology().reachable(attacker, id)) return;
    if (!stolen || *other.ip < *stolen) {
      stolen = other.ip;
      victim = id;
    }
  });
  if (!stolen) return false;

  // No quorum round, no allocator, no table update anywhere: the squatter
  // simply starts answering to the victim's address in the victim's
  // network.  The uniqueness auditor sees two holders the moment both are
  // in one component; hardened heads see a claim their tables contradict.
  st.ip = stolen;
  st.network_id = node(victim).network_id;
  if (st.role == Role::kUnconfigured) {
    st.role = Role::kCommonNode;
    st.bootstrap_timer.cancel();
  }
  ++adversary_ctl()->stats().squats;
  QIP_DEBUG << "adversary: node " << attacker << " squats " << *stolen
            << " held by node " << victim;
  if (ctx().tracing_on()) {
    ctx().recorder().instant(sim().now(), "squat", "adversary", attacker,
                             {{"victim", victim}});
  }
  return true;
}

void QipEngine::perform_poison(NodeId attacker) {
  auto& st = node(attacker);
  AdversaryController* a = adversary_ctl();
  for (const auto& [owner, rep] : st.replicas) {
    if (!alive(owner) || !st.qdset.count(owner)) continue;
    ReplicaCopy bad = rep;
    bool corrupted = false;
    for (IpAddress addr : bad.table.known_addresses()) {
      const AddressRecord r = bad.table.get(addr);
      if (r.status != AddressStatus::kAllocated) continue;
      // The owner's own address stays: freeing the record every replica
      // holder can check against a live beacon one hop away would expose
      // the poisoner instantly even unhardened.
      if (r.holder == owner) continue;
      AddressRecord fake = r;
      fake.status = AddressStatus::kFree;
      fake.holder = 0;
      fake.timestamp = r.timestamp + 1000;  // outruns honest freshness wins
      bad.table.install(addr, fake);
      corrupted = true;
    }
    if (!corrupted) continue;
    bad.free_pool = derive_free_pool(bad.universe, bad.table);
    bad.version = rep.version + 1;
    ++a->stats().poisoned_snapshots;
    // Through the same delivery path honest refreshes use: recipients that
    // believe it re-issue addresses still in use.
    push_snapshot(attacker, bad, Traffic::kMaintenance);
  }
}

// ---------------------------------------------------------------------------
// Squat detection (hardened hello-scan pass)
// ---------------------------------------------------------------------------

void QipEngine::detect_squats(NodeId head) {
  auto& st = node(head);
  nodes_.for_each([&](NodeId id, const QipNodeState& other) {
    if (id == head || !other.ip || is_quarantined(id)) return;
    if (other.role == Role::kUnconfigured) return;
    if (!topology().has_node(id)) return;
    // Only same-network claims within the beacon horizon: cross-network
    // duplicates are legitimate pending merges (§V-C), and a head cannot
    // hear hellos from beyond ch_radius.
    if (!(other.network_id == st.network_id)) return;
    const auto d = topology().hop_distance(head, id);
    if (!d || *d > params_.ch_radius) return;

    const IpAddress addr = *other.ip;
    // What do our authoritative table / replicas bind this address to?
    AddressRecord rec;
    bool known = false;
    if (st.owned_universe.contains(addr)) {
      rec = st.table.get(addr);
      known = true;
    } else {
      for (const auto& [owner, rep] : st.replicas) {
        if (!rep.universe.contains(addr)) continue;
        rec = rep.table.get(addr);
        known = true;
        break;
      }
    }
    if (!known || rec.status != AddressStatus::kAllocated) return;
    const NodeId holder = rec.holder;
    if (holder == id) return;  // the claim matches our record: honest
    // Our record could be the stale side (the claimant reconfigured
    // elsewhere).  Challenge only when the recorded holder still answers
    // for the address — then two live nodes claim it and one is lying.
    if (!alive(holder) || !node(holder).ip || !(*node(holder).ip == addr))
      return;
    challenge_claim(head, id, addr);
  });
}

void QipEngine::challenge_claim(NodeId head, NodeId claimant, IpAddress addr) {
  auto& st = node(head);
  if (st.challenge_timers.count(claimant)) return;  // one in flight per peer
  QIP_DEBUG << "head " << head << " challenges node " << claimant
            << "'s claim to " << addr;

  const bool sent = send(
      head, claimant, QipMsg::kAddrChallenge, Traffic::kMaintenance, 0,
      [this, head, claimant](std::uint64_t) {
        if (!alive(claimant)) return;
        // An honest claimant proves its claim by echoing its configurer's
        // endorsement.  A squatter has none to echo; a silent defector
        // does not serve challenges.  Both stay silent.
        if (attack_active(claimant, AttackKind::kSquat) ||
            attack_active(claimant, AttackKind::kSilentDefection)) {
          if (AdversaryController* a = adversary_ctl())
            ++a->stats().dropped_services;
          return;
        }
        send(claimant, head, QipMsg::kChallengeAck, Traffic::kMaintenance, 0,
             [this, head, claimant](std::uint64_t) {
               if (!alive(head)) return;
               auto& s = node(head);
               auto it = s.challenge_timers.find(claimant);
               if (it == s.challenge_timers.end()) return;
               it->second.cancel();
               s.challenge_timers.erase(it);
             });
      });
  if (!sent) return;  // unreachable: the liveness machinery's business

  ++challenges_sent_;
  // Delivery is strictly asynchronous (>= 2 hop delays round trip), so the
  // ack can never race arming this deadline.
  st.challenge_timers[claimant] =
      sim().after(params_.harden.challenge_timeout, [this, head, claimant] {
        if (!alive(head)) return;
        auto& s = node(head);
        if (s.challenge_timers.erase(claimant) == 0) return;
        quarantine(head, claimant, "unanswered_challenge");
      });
}

// ---------------------------------------------------------------------------
// Suspicion and quarantine
// ---------------------------------------------------------------------------

void QipEngine::add_suspicion(NodeId accuser, NodeId peer, const char* why) {
  if (!harden_on()) return;
  if (!alive(accuser) || peer == kNoNode || is_quarantined(peer)) return;
  auto& st = node(accuser);
  const std::uint32_t points = ++st.suspicion[peer];
  QIP_DEBUG << "suspicion: node " << accuser << " vs node " << peer << " ("
            << why << "), " << points << "/"
            << params_.harden.suspicion_threshold;
  if (points >= params_.harden.suspicion_threshold)
    quarantine(accuser, peer, why);
}

void QipEngine::quarantine(NodeId accuser, NodeId culprit, const char* why) {
  if (!harden_on()) return;
  if (culprit == kNoNode || is_quarantined(culprit)) return;

  quarantined_.insert(culprit);
  ++quarantines_;
  QIP_DEBUG << "quarantine: node " << accuser << " expels node " << culprit
            << " (" << why << ")";
  if (ctx().tracing_on()) {
    ctx().recorder().instant(sim().now(), "quarantine", "adversary", accuser,
                             {{"culprit", culprit}, {"why", why}});
  }

  // Revocation broadcast: the expulsion must reach every honest node, or
  // quorum groups would disagree on who may vote.  Charged like any flood.
  transport().flood_component_view(accuser, Traffic::kMaintenance,
                              [](NodeId, std::uint32_t) {});

  // The culprit keeps running (it is an attacker, not a crash), but the
  // honest network stops seeing it: out of the cluster map, out of every
  // future voting group and watch-list, audited in its own domain.
  clusters_.remove(culprit);
  if (detector_) detector_->forget(culprit);
  nodes_.for_each(
      [&](NodeId, QipNodeState& s) { s.suspicion.erase(culprit); });
}

// ---------------------------------------------------------------------------
// Hardened round deadline
// ---------------------------------------------------------------------------

void QipEngine::harden_round_expired(std::uint64_t txn_id,
                                     std::uint32_t round) {
  auto it = txns_.find(txn_id);
  if (it == txns_.end()) return;
  ConfigTxn& txn = it->second;
  if (!txn.round_open || txn.round != round) return;
  txn.round_open = false;

  // Close the round *before* charging suspicion: bumping the round makes
  // handle_vote drop any straggler CFM for the expired round (it would
  // otherwise decrement an already-zeroed outstanding count).
  ++txn.round;

  for (NodeId v : txn.voters) {
    if (txn.responded.count(v)) continue;
    // A voter the oracle itself cannot reach stalled the round honestly
    // (drift, crash); only reachable-but-silent earns suspicion.
    if (!alive(v) || !topology().has_node(v) ||
        !topology().reachable(txn.allocator, v))
      continue;
    add_suspicion(txn.allocator, v, "vote_silence");
  }

  QIP_DEBUG << "hardened round deadline: txn " << txn_id << " round " << round
            << " closed with " << txn.outstanding << " votes outstanding";
  txn.outstanding = 0;
  // Retry through the ordinary failure path: conflict if any veto arrived,
  // else the busy/backoff route (bounded by max_busy_retries).
  round_failed(txn, txn.conflicts > 0);
}

// ---------------------------------------------------------------------------
// Hardened owner-side merge (anti-poison)
// ---------------------------------------------------------------------------

void QipEngine::merge_table_hardened(NodeId owner, NodeId source,
                                     const AllocationTable& incoming) {
  auto& st = node(owner);
  // Deterministic iteration: known_addresses() of an unordered table must
  // not dictate event order, so sort first.
  std::vector<IpAddress> addrs = incoming.known_addresses();
  std::sort(addrs.begin(), addrs.end());
  for (IpAddress a : addrs) {
    const AddressRecord theirs = incoming.get(a);
    const AddressRecord ours = st.table.get(a);
    if (theirs.timestamp <= ours.timestamp) continue;
    const bool demotes = ours.status == AddressStatus::kAllocated &&
                         theirs.status != AddressStatus::kAllocated;
    if (demotes) {
      // Verify with the recorded holder before believing a non-owner
      // demotion of our own record: one charged round trip.  A holder that
      // still answers for the address exposes the demotion as a lie.
      const NodeId holder = ours.holder;
      if (holder != kNoNode && alive(holder) && topology().has_node(holder) &&
          topology().reachable(owner, holder)) {
        if (const auto d = topology().hop_distance(owner, holder))
          transport().stats().record(Traffic::kMaintenance, 2ULL * *d, 2);
        if (node(holder).ip && *node(holder).ip == a) {
          add_suspicion(owner, source, "false_demotion");
          continue;
        }
      }
    }
    st.table.install(a, theirs);
  }
}

}  // namespace qip
