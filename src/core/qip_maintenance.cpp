// QipEngine: periodic hello processing, location updates, quorum adjustment
// (§V-B) and address reclamation (§IV-D).
#include "core/qip_engine.hpp"

#include <algorithm>

#include "fault/adversary.hpp"
#include "net/failure_detector.hpp"
#include "sim/sim_context.hpp"
#include "util/logging.hpp"

namespace qip {

// ---------------------------------------------------------------------------
// Hello / periodic maintenance
// ---------------------------------------------------------------------------

void QipEngine::start_hello() {
  if (hello_running_) return;
  hello_running_ = true;
  hello_timer_ = sim().after(params_.hello_interval, [this] {
    if (!hello_running_) return;
    hello_tick();
    hello_running_ = false;
    start_hello();
  });
}

void QipEngine::stop_hello() {
  hello_running_ = false;
  hello_timer_.cancel();
}

void QipEngine::hello_tick() {
  // Scheduled attacks fire first (null-gated: a run with no adversary plan
  // takes one pointer check and is byte-identical to the seed behavior).
  run_adversary_tick();

  // Every configured node beacons once per interval.  Hellos are metered in
  // their own category and excluded from the paper's overhead figures (all
  // compared protocols beacon equivalently).
  std::uint64_t beacons = 0;
  nodes_.for_each([&](NodeId id, const QipNodeState& st) {
    if (st.role != Role::kUnconfigured && topology().has_node(id)) ++beacons;
  });
  if (beacons > 0) {
    transport().stats().record(Traffic::kHello, beacons, beacons);
    if (ctx().tracing_on()) {
      // Hellos are aggregated per tick, not sent individually; mirror the
      // aggregate so the trace's message mix covers beacon traffic too.
      ctx().recorder().instant(
          sim().now(), "hello", "net", 0,
          {{"traffic", "hello"}, {"hops", beacons}, {"count", beacons}});
    }
  }

  for (NodeId h : clusters_.heads()) {
    if (alive(h) && topology().has_node(h)) head_neighborhood_scan(h);
  }
  merge_scan();
  refresh_network_ids();

  // Rescue scan: a node stranded unconfigured (exhausted retries during a
  // merge storm, allocator died mid-handshake) tries again once its last
  // attempt is stale.  Hello reception is what tells it the network is
  // there to join.
  nodes_.for_each([&](NodeId id, QipNodeState& st) {
    if (st.role != Role::kUnconfigured || !topology().has_node(id)) return;
    if (st.bootstrap_timer.pending()) return;
    // Stale means older than a full transaction timeout: rescuing earlier
    // could start a second transaction for a request still in flight.
    if (sim().now() - st.last_entry_attempt < params_.txn_timeout + 2.0)
      return;
    st.entry_retries = 0;
    start_configuration(id);
  });
}

void QipEngine::refresh_network_ids() {
  // §II/§V-C: the network id is the lowest IP *currently in the network*,
  // disseminated by the hello exchange.  After a partition, the side that
  // lost its lowest node adopts a higher id, which is exactly what lets a
  // later heal be detected as a merge.  The refresh runs after merge_scan
  // so a freshly healed boundary is detected before ids unify.
  for (const auto& component : topology().components_view()) {
    // Epoch nonces separate pools born independently; each epoch group in
    // the component tracks its own minimum.
    std::map<std::uint64_t, IpAddress> lows;
    std::map<std::uint64_t, std::set<IpAddress>> seen_lows;
    for (NodeId id : component) {
      if (!alive(id)) continue;
      const auto& st = node(id);
      if (st.role == Role::kUnconfigured || !st.ip) continue;
      auto [it, fresh] = lows.try_emplace(st.network_id.nonce, *st.ip);
      if (!fresh && *st.ip < it->second) it->second = *st.ip;
      seen_lows[st.network_id.nonce].insert(st.network_id.low);
    }
    for (NodeId id : component) {
      if (!alive(id)) continue;
      auto& st = node(id);
      if (st.role == Role::kUnconfigured || !st.ip) continue;
      // A nonce group whose members disagree on the low is a *pending
      // merge* (two healed partitions): leave the ids divergent so
      // merge_scan can still detect the boundary on a later tick —
      // unifying them here would hide the merge and with it the
      // duplicate-address resolution.
      if (seen_lows.at(st.network_id.nonce).size() > 1) continue;
      st.network_id.low = lows.at(st.network_id.nonce);
    }
  }
}

void QipEngine::on_mobility_tick() {
  if (params_.periodic_location_update) location_update_scan();
}

// ---------------------------------------------------------------------------
// Location updates (§IV-C.1)
// ---------------------------------------------------------------------------

void QipEngine::location_update_scan() {
  nodes_.for_each([&](NodeId id, QipNodeState& st) {
    if (st.role != Role::kCommonNode || !topology().has_node(id)) return;
    const NodeId anchor =
        st.administrator != kNoNode ? st.administrator : st.configurer;
    bool too_far = true;
    if (anchor != kNoNode && alive(anchor) && topology().has_node(anchor)) {
      const auto d = topology().hop_distance(id, anchor);
      too_far = !d || *d > params_.update_threshold;
    }
    if (!too_far) return;
    const auto nearest = clusters_.nearest_head(id);
    if (!nearest || *nearest == anchor || !alive(*nearest)) return;
    const NodeId c = *nearest;
    const NodeId configurer = st.configurer;
    st.administrator = c;
    send(id, c, QipMsg::kUpdateLoc, Traffic::kMovement, 0,
         [this, c, id, configurer](std::uint64_t) {
           if (!is_head(c)) return;
           node(c).administered[id] = configurer;
         });
  });
}

// ---------------------------------------------------------------------------
// Quorum adjustment (§V-B)
// ---------------------------------------------------------------------------

void QipEngine::head_neighborhood_scan(NodeId head) {
  auto& st = node(head);

  // 1. Liveness of current QDSet members.  The topology oracle is the
  // paper's crash-only detector; an installed FailureDetector layers
  // *service* evidence on top — a member the oracle can reach but the
  // detector cannot raise is treated as missing (and, hardened, expelled:
  // reachable-but-silent is exactly what a silent defector looks like).
  const std::vector<NodeId> members(st.qdset.begin(), st.qdset.end());
  if (detector_) detector_->observe(head, members);
  for (NodeId v : members) {
    bool contactable = alive(v) && topology().has_node(v) &&
                       topology().reachable(head, v) && !is_quarantined(v);
    if (!contactable && detector_) {
      // The oracle already accounts for a crashed or drifted member; probe
      // evidence accumulated across an outage is uninterpretable and would
      // condemn an honest member on stale misses the tick it returns.
      detector_->clear(head, v);
    }
    if (contactable && detector_ && detector_->suspects(head, v)) {
      // Reachable-but-silent is a silent defector's signature — but it is
      // evidence, not a verdict: quarantine only once the suspicion
      // threshold accrues (an honest recoverer clears itself with the next
      // acked probe before reaching it).
      add_suspicion(head, v, "probe_silence");
      contactable = false;
    }
    if (contactable) {
      unsuspect(head, v);
    } else {
      suspect(head, v);
    }
  }

  // 2. Newly adjacent heads expand the quorum set.
  for (NodeId h : clusters_.heads_within(head, params_.qdset_radius)) {
    if (!alive(h) || is_quarantined(h) || st.qdset.count(h)) continue;
    add_qdset_link(head, h, Traffic::kMaintenance);
  }

  // Hardened squat detection: challenge nearby same-network claims our
  // tables bind to a different live holder.
  if (harden_on()) detect_squats(head);

  // 3. Replica floor: recruit farther heads when the QDSet got too small.
  if (st.qdset.size() < params_.min_qdset) grow_quorum(head);

  // 4. Isolation (§V-C): a head that once had a quorum group but can reach
  // no other head at all cannot assemble any quorum; after a few patient
  // scans it restarts as a fresh network.
  const bool sees_other_head = clusters_.nearest_head(head).has_value();
  if (!sees_other_head && !st.replicas.empty()) {
    if (++st.isolation_ticks >= params_.isolation_patience) {
      st.isolation_ticks = 0;
      isolated_head_recovery(head);
    }
  } else {
    st.isolation_ticks = 0;
  }
}

void QipEngine::suspect(NodeId head, NodeId missing) {
  auto& st = node(head);
  if (st.suspect_timers.count(missing) || st.probe_timers.count(missing))
    return;
  st.suspect_timers[missing] =
      sim().after(params_.td, [this, head, missing] {
        if (!alive(head)) return;
        auto& s = node(head);
        if (!s.suspect_timers.count(missing)) return;  // recovered meanwhile
        s.suspect_timers.erase(missing);
        shrink_quorum(head, missing);
      });
}

void QipEngine::unsuspect(NodeId head, NodeId member) {
  auto& st = node(head);
  auto it = st.suspect_timers.find(member);
  if (it != st.suspect_timers.end()) {
    it->second.cancel();
    st.suspect_timers.erase(it);
  }
  auto pt = st.probe_timers.find(member);
  if (pt != st.probe_timers.end()) {
    pt->second.cancel();
    st.probe_timers.erase(pt);
  }
}

void QipEngine::shrink_quorum(NodeId head, NodeId missing) {
  auto& st = node(head);

  // View-change safety: removing a member from the quorum group is itself an
  // update that must be committed by a quorum of the current group,
  // otherwise a minority partition could shrink itself into a solo quorum
  // and allocate addresses the majority also allocates.  Dynamic linear
  // voting breaks exact-half ties with the group's smallest member as the
  // distinguished node (§II-D) — without it, a two-member group could never
  // shrink at all.  The commit costs a round trip per reachable member.
  const std::uint32_t group = static_cast<std::uint32_t>(st.qdset.size()) + 1;
  std::uint32_t reachable = 1;  // ourselves
  NodeId distinguished = head;
  for (NodeId m : st.qdset) distinguished = std::min(distinguished, m);
  bool distinguished_reachable = (distinguished == head);
  for (NodeId m : st.qdset) {
    if (m == missing || !alive(m) || !topology().has_node(m) ||
        is_quarantined(m)) {
      continue;
    }
    const auto d = topology().hop_distance(head, m);
    if (!d) continue;
    transport().stats().record(Traffic::kMaintenance, 2ULL * *d, 2);
    ++reachable;
    if (m == distinguished) distinguished_reachable = true;
  }
  const bool quorate =
      policy().satisfied(group, reachable, distinguished_reachable);
  if (!quorate) {
    QIP_DEBUG << "head " << head << " cannot shrink quorum around " << missing
              << ": only " << reachable << "/" << group << " reachable";
    return;  // re-suspected on the next hello scan if still unreachable
  }

  // Exclude the unresponsive head from the quorum set; its replica is kept
  // so a later reclamation can restore the space.
  st.qdset.erase(missing);
  QIP_DEBUG << "head " << head << " shrinks quorum, excluding " << missing;

  // Verify its existence with REP_REQ; no reply within T_r starts address
  // reclamation for it.  An expelled (quarantined) member is not probed at
  // all — its reachability is exactly what must NOT rescue it — so its
  // space proceeds straight to reclamation.
  const bool sent =
      !is_quarantined(missing) &&
      send(head, missing, QipMsg::kRepReq, Traffic::kMaintenance, 0,
           [this, head, missing](std::uint64_t) {
             // The head is actually reachable again: rejoin.
             if (!alive(head) || !alive(missing)) return;
             // A silent defector lets the probe die in its queue, so the
             // T_r timer below runs out and reclamation proceeds.
             if (attack_active(missing, AttackKind::kSilentDefection)) {
               ++adversary_ctl()->stats().dropped_services;
               return;
             }
             send(missing, head, QipMsg::kRepAck, Traffic::kMaintenance, 0,
                  [this, head, missing](std::uint64_t) {
                    if (!alive(head) || !alive(missing)) return;
                    add_qdset_link(head, missing, Traffic::kMaintenance);
                  });
           });
  if (sent) return;  // reachable after all; REP_ACK path handles rejoin

  st.probe_timers[missing] = sim().after(params_.tr, [this, head, missing] {
    if (!alive(head)) return;
    auto& s = node(head);
    s.probe_timers.erase(missing);
    if (s.qdset.count(missing)) return;  // rejoined meanwhile
    if (!s.replicas.count(missing)) return;
    // Deduplicate initiators: the smallest-id surviving member of the dead
    // head's replica group starts the reclamation.
    const auto& rep = s.replicas.at(missing);
    NodeId min_alive = head;
    for (NodeId m : rep.owner_qdset) {
      if (m != missing && alive(m) && is_head(m) && !is_quarantined(m) &&
          topology().has_node(m) && topology().reachable(head, m)) {
        min_alive = std::min(min_alive, m);
      }
    }
    if (min_alive == head) start_reclamation(head, missing);
  });
}

void QipEngine::grow_quorum(NodeId head) {
  // §V-B: "cluster heads begin to increase replicas once |QDSet| is lower
  // than 3" — recruit beyond the normal adjacency radius.
  auto& st = node(head);
  for (NodeId h :
       clusters_.heads_within(head, params_.qdset_radius + 2)) {
    if (st.qdset.size() >= params_.min_qdset) break;
    if (!alive(h) || is_quarantined(h) || st.qdset.count(h)) continue;
    add_qdset_link(head, h, Traffic::kMaintenance);
  }
}

void QipEngine::add_qdset_link(NodeId a, NodeId b, Traffic traffic) {
  if (!is_head(a) || !is_head(b) || a == b) return;
  // Expelled peers can neither hold nor receive replicas.
  if (is_quarantined(a) || is_quarantined(b)) return;
  auto& sa = node(a);
  if (sa.qdset.count(b)) return;
  // Heads of different logical networks never pool replicas: the merge
  // procedure (§V-C) reconfigures one side first.
  if (node(a).network_id != node(b).network_id) return;

  // `a` offers its replica; `b` accepts, reciprocates with its own.
  sa.qdset.insert(b);
  const ReplicaCopy mine = snapshot_space(a, a);
  send(a, b, QipMsg::kQdJoin, traffic, 0,
       [this, a, b, mine, traffic](std::uint64_t) {
         if (!is_head(b)) return;
         auto& sb = node(b);
         sb.qdset.insert(a);
         adopt_replica(b, mine, a);
         const ReplicaCopy theirs = snapshot_space(b, b);
         send(b, a, QipMsg::kQdWelcome, traffic, 0,
              [this, a, b, theirs](std::uint64_t) {
                if (!is_head(a)) return;
                adopt_replica(a, theirs, b);
              });
       });
}

// ---------------------------------------------------------------------------
// Address reclamation (§IV-D)
// ---------------------------------------------------------------------------

void QipEngine::start_reclamation(NodeId initiator, NodeId dead_head) {
  if (reclaims_.count(dead_head)) return;
  if (!is_head(initiator)) return;
  auto attempted = reclaim_attempted_.find(dead_head);
  if (attempted != reclaim_attempted_.end() &&
      sim().now() - attempted->second < 10.0) {
    return;  // a recent attempt was blocked (no majority); don't spin
  }
  reclaim_attempted_[dead_head] = sim().now();
  auto& ini = node(initiator);
  if (!ini.replicas.count(dead_head)) return;
  ++reclaims_started_;
  QIP_DEBUG << "head " << initiator << " reclaims space of vanished head "
            << dead_head;

  ReclaimTxn rec;
  rec.dead_head = dead_head;
  rec.initiator = initiator;
  rec.settle_timer = sim().after(params_.reclaim_settle, [this, dead_head] {
    finish_reclamation(dead_head);
  });
  if (ctx().tracing_on()) {
    rec.obs_span = ctx().recorder().begin_span(
        sim().now(), "reclamation", "qip", initiator,
        {{"dead_head", dead_head}});
  }
  reclaims_.emplace(dead_head, std::move(rec));

  // ADDR_REC floods the initiator's neighborhood (reclamation is local,
  // §VI-E); every common node configured (or administered) by the dead head
  // claims its address via REC_REP.
  transport().flood_view(
      initiator, params_.reclaim_radius, Traffic::kReclamation,
      [this, dead_head](NodeId receiver, std::uint32_t hops) {
        if (!alive(receiver)) return;
        auto& st = node(receiver);
        if (st.role != Role::kCommonNode || !st.ip) return;
        if (st.configurer != dead_head && st.administrator != dead_head)
          return;
        const auto nearest = clusters_.nearest_head(receiver);
        if (!nearest || !alive(*nearest)) return;
        const NodeId w = *nearest;
        const IpAddress addr = *st.ip;
        send(receiver, w, QipMsg::kRecRep, Traffic::kReclamation, hops,
             [this, w, receiver, dead_head, addr](std::uint64_t h) {
               handle_rec_rep(w, receiver, dead_head, addr, h);
             },
             addr.to_string());
      });
  trace(QipMsg::kAddrRec, initiator, kNoNode, 0, "flood");
}

void QipEngine::handle_rec_rep(NodeId head, NodeId claimant, NodeId dead_head,
                               IpAddress addr, std::uint64_t hops) {
  if (!is_head(head)) return;
  auto it = reclaims_.find(dead_head);
  if (it != reclaims_.end() && it->second.initiator == head) {
    it->second.claims[addr] = claimant;
    return;
  }
  // Not the initiator: forward the claim toward it ("it will forward the
  // message to its adjacent cluster heads until the allocation information
  // is updated").
  if (it == reclaims_.end()) return;
  const NodeId initiator = it->second.initiator;
  if (!alive(initiator)) return;
  send(head, initiator, QipMsg::kRecRep, Traffic::kReclamation, hops,
       [this, initiator, claimant, dead_head, addr](std::uint64_t h) {
         handle_rec_rep(initiator, claimant, dead_head, addr, h);
       },
       addr.to_string());
}

void QipEngine::finish_reclamation(NodeId dead_head) {
  auto it = reclaims_.find(dead_head);
  if (it == reclaims_.end()) return;
  ReclaimTxn txn = std::move(it->second);
  reclaims_.erase(it);

  auto close_span = [&](const char* result) {
    if (txn.obs_span == 0) return;
    ctx().recorder().end_span(
        sim().now(), txn.obs_span, "reclamation", "qip", txn.initiator,
        {{"result", result},
         {"claims", static_cast<std::uint64_t>(txn.claims.size())}});
    txn.obs_span = 0;
  };

  const NodeId initiator = txn.initiator;
  if (!is_head(initiator)) {
    close_span("initiator_lost");
    return;
  }
  auto& ini = node(initiator);
  auto rep_it = ini.replicas.find(dead_head);
  if (rep_it == ini.replicas.end()) {
    close_span("replica_gone");
    return;
  }
  const ReplicaCopy rep = rep_it->second;

  // Majority guard (§V-C): only the partition holding the majority of the
  // dead head's replica group may reclaim, otherwise two partitions could
  // both hand out the same space.  Polling each surviving member costs one
  // round trip.
  std::set<NodeId> full_group = rep.owner_qdset;
  full_group.insert(dead_head);
  full_group.insert(initiator);
  const auto group = static_cast<std::uint32_t>(full_group.size());
  const NodeId distinguished = *full_group.begin();
  std::uint32_t reachable_copies = 1;  // our own replica
  bool distinguished_reachable = (distinguished == initiator);
  for (NodeId m : full_group) {
    if (m == initiator || m == dead_head) continue;
    if (alive(m) && is_head(m) && topology().has_node(m) &&
        topology().reachable(initiator, m)) {
      const auto d = topology().hop_distance(initiator, m);
      transport().stats().record(Traffic::kReclamation, 2ULL * *d, 2);
      ++reachable_copies;
      if (m == distinguished) distinguished_reachable = true;
    }
  }
  // Reclamation is a write on the dead head's space and needs a quorum of
  // its replica group under the configured backend — e.g. a strict
  // majority, or under dynamic linear voting exactly half including the
  // distinguished (lowest-id) copy.  The same rule gates allocations, so
  // two partitioned halves can never both act.
  const bool quorate =
      policy().satisfied(group, reachable_copies, distinguished_reachable);
  if (!quorate) {
    QIP_DEBUG << "reclamation of " << dead_head
              << " abandoned: no quorum (" << reachable_copies << "/"
              << group << ")";
    close_span("no_quorum");
    return;
  }

  // The dead head may have reappeared during the settle window (transient
  // unreachability, not death): abandon the reclamation, the REP_ACK path
  // rejoins it.  A quarantined head gets no such reprieve — expulsion is
  // final and its space must be recovered.
  if (!is_quarantined(dead_head) && alive(dead_head) &&
      topology().has_node(dead_head) &&
      topology().reachable(initiator, dead_head)) {
    QIP_DEBUG << "reclamation of " << dead_head
              << " abandoned: head reachable again";
    close_span("head_returned");
    return;
  }

  // Adopt stewardship of the addresses we do not already own (overlap can
  // occur after an isolated-head recovery re-issued the pool, §V-C).
  const AddressBlock adopted = rep.universe.minus(ini.owned_universe);
  ini.owned_universe.merge(adopted);
  for (const auto& r : adopted.ranges()) {
    for (std::uint32_t v = r.lo.value();; ++v) {
      const IpAddress addr(v);
      auto claim = txn.claims.find(addr);
      AddressRecord record = rep.table.get(addr);
      // A recorded holder that sent no claim may simply sit beyond the
      // scoped ADDR_REC flood (it drifted, §IV-C).  Probe it before
      // declaring the address vacant: freeing a live node's address is the
      // one mistake reclamation must never make.
      if (params_.reclaim_probe && claim == txn.claims.end() &&
          record.status == AddressStatus::kAllocated && record.holder != 0) {
        const NodeId holder = record.holder;
        if (alive(holder) && topology().has_node(holder)) {
          const auto d = topology().hop_distance(initiator, holder);
          if (d) {
            transport().stats().record(Traffic::kReclamation, 2ULL * *d, 2);
            const auto& hs = node(holder);
            if (hs.ip == addr) {
              txn.claims.emplace(addr, holder);
              claim = txn.claims.find(addr);
            }
          }
        }
      }
      if (claim != txn.claims.end()) {
        record.status = AddressStatus::kAllocated;
        record.holder = claim->second;
        ++record.timestamp;
        ini.table.install(addr, record);
        // Adopt the claimant into our cluster.
        const NodeId m = claim->second;
        if (alive(m)) {
          send(initiator, m, QipMsg::kAllocChange, Traffic::kReclamation, 0,
               [this, m, initiator](std::uint64_t) {
                 if (!alive(m)) return;
                 auto& ms = node(m);
                 if (ms.role != Role::kCommonNode) return;
                 ms.configurer = initiator;
                 ms.administrator = kNoNode;
                 if (clusters_.is_head(initiator))
                   clusters_.reassign_member(m, initiator);
               });
        }
      } else {
        // Unclaimed: the holder is presumed gone; the address returns to
        // the free pool.
        record.status = AddressStatus::kFree;
        record.holder = 0;
        ++record.timestamp;
        ini.table.install(addr, record);
        if (!ini.ip_space.contains(addr)) ini.ip_space.insert(addr);
      }
      if (v == r.hi.value()) break;
    }
  }
  ++ini.version;
  ini.replicas.erase(dead_head);
  ini.qdset.erase(dead_head);
  replicate_update(initiator, initiator, Traffic::kReclamation);

  // Tell the other survivors of the dead head's group to drop their stale
  // replicas.
  for (NodeId m : rep.owner_qdset) {
    if (m == initiator || !alive(m)) continue;
    send(initiator, m, QipMsg::kReclaimDone, Traffic::kReclamation, 0,
         [this, m, dead_head](std::uint64_t) {
           if (!alive(m)) return;
           auto& ms = node(m);
           ms.replicas.erase(dead_head);
           ms.qdset.erase(dead_head);
           ms.suspect_timers.erase(dead_head);
           ms.probe_timers.erase(dead_head);
         });
  }
  ++reclaims_completed_;
  close_span("reclaimed");
}

}  // namespace qip
