// The quorum-based autoconfiguration protocol (the paper's contribution).
//
// QipEngine implements AutoconfProtocol with the full §IV/§V machinery:
//
//   * on-entry clustering — a node with a head within ch_radius hops joins
//     as a common node, otherwise it is configured as a new cluster head
//     with half of its allocator's IPSpace;
//   * quorum voting — every allocation runs a read round (QUORUM_CLT /
//     QUORUM_CFM) over the owning head's replica group and a write round
//     (QUORUM_UPD) after commit.  Votes are *permissions* (mutual exclusion,
//     §II-C): a voter lends its copy of a space to one transaction at a
//     time, so two allocators can never commit the same address.  Dynamic
//     linear voting (§II-D) accepts an exactly-half quorum that includes
//     the distinguished copy — held by the group's lowest-id member, one
//     deterministic rule shared with view changes and reclamation (see
//     qip_types.hpp and DESIGN.md §6.2);
//   * address borrowing from QuorumSpace when IPSpace is exhausted, and
//     agent forwarding to the configurer when everything is exhausted (§V-A);
//   * movement: periodic UPDATE_LOC beyond update_threshold hops, or the
//     upon-leave update scheme (§IV-C);
//   * graceful departure for common nodes (RETURN_ADDR routed back to the
//     allocator) and cluster heads (block return to the configurer or the
//     smallest-block QDSet member, RESIGN, ALLOC_CHANGE to members);
//   * quorum adjustment (T_d shrink, REP_REQ probe, T_r, replica regrowth
//     below min_qdset, §V-B) and address reclamation (ADDR_REC flood,
//     REC_REP claims, §IV-D);
//   * partition & merge: network ids (lowest IP), isolated-head recovery,
//     and one-by-one rejoin of the larger-id network after a merge (§V-C).
//
// The engine is a deterministic event-driven coordinator: every inter-node
// interaction flows through the metered Transport, and a node's handlers
// touch only that node's own QipNodeState.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include <set>

#include "cluster/cluster_view.hpp"
#include "core/node_table.hpp"
#include "core/qip_node.hpp"
#include "core/qip_params.hpp"
#include "core/qip_types.hpp"
#include "net/protocol.hpp"
#include "net/reliable_channel.hpp"

namespace qip {

class AdversaryController;
class FailureDetector;
enum class AttackKind : std::uint8_t;

class QipEngine : public AutoconfProtocol {
 public:
  QipEngine(Transport& transport, Rng& rng, QipParams params = {});
  ~QipEngine() override;

  std::string name() const override { return "QIP"; }

  // -- AutoconfProtocol ----------------------------------------------------
  void node_entered(NodeId id) override;
  void node_departing(NodeId id) override;
  void node_left(NodeId id) override;
  void node_vanished(NodeId id) override;
  void on_mobility_tick() override;
  std::uint64_t audit_domain(NodeId id) const override;

  /// Live state, not the ConfigRecord bookkeeping: internal reconfiguration
  /// paths (merge dissolution, isolated-head recovery, heal) move a node's
  /// address without re-running the entry flow, so the record's address can
  /// go stale while the node legitimately holds a different one.
  std::optional<IpAddress> address_of(NodeId id) const override {
    const QipNodeState* st = nodes_.find(id);
    if (st == nullptr) return std::nullopt;
    return st->ip;
  }

  // -- Introspection (tests, figures) --------------------------------------
  const QipParams& params() const { return params_; }
  /// The quorum backend every quorum-critical decision dispatches through
  /// (vote tallying, maintenance quorate checks, hardened cross-checks).
  const QuorumPolicy& policy() const { return quorum_policy(params_.quorum); }
  const ClusterView& clusters() const { return clusters_; }
  bool knows(NodeId id) const { return nodes_.contains(id); }
  const QipNodeState& state_of(NodeId id) const;

  /// Average |QDSet| over current cluster heads (Fig. 12 input).
  double average_qdset_size() const;
  /// Average visible IP space (own + QuorumSpace) per head, in addresses
  /// (§V-A's "extends the IP space of a cluster head by up to 5.5 times").
  double average_visible_space() const;
  /// Average own IPSpace per head.
  double average_own_space() const;

  std::uint64_t config_failures() const { return config_failures_; }
  std::uint64_t config_successes() const { return config_successes_; }
  std::uint64_t reclaims_started() const { return reclaims_started_; }
  std::uint64_t reclaims_completed() const { return reclaims_completed_; }
  std::uint64_t merges_handled() const { return merges_handled_; }

  /// Runs the hello/maintenance scan once (normally driven by the periodic
  /// hello timer; exposed for tests).
  void hello_tick();

  /// Starts/stops the periodic hello timer.
  void start_hello();
  void stop_hello();

  /// Installs a trace sink receiving every protocol message (Table 1).
  void set_trace(TraceSink sink) { trace_ = std::move(sink); }

  /// The ack+retransmit channel quorum-critical RPCs ride under fault
  /// injection (pass-through otherwise).  Exposed so fault tests can read
  /// retransmission counts or force-disable it.
  ReliableChannel& channel() { return channel_; }
  const ReliableChannel& channel() const { return channel_; }

  /// True for RPCs that opt into the ReliableChannel: lock/vote/commit,
  /// replica sync, liveness probes and config/departure handshakes.  Entry
  /// requests, HELLO beacons, location updates and flood-borne messages stay
  /// best-effort (their own periodic retries tolerate loss).
  static bool quorum_critical(QipMsg m);

  /// All configured addresses: node -> address (sorted for determinism).
  std::map<NodeId, IpAddress> configured_addresses() const;

  // -- Adversary hardening (qip_hardening.cpp, docs/ADVERSARY.md) -----------

  /// Installs a pluggable failure detector (not owned; must outlive the
  /// engine's run).  The engine feeds each head's QDSet watch-list into it
  /// every hello scan and treats a suspected member as uncontactable.  With
  /// no detector the built-in topology oracle stands alone, and the run is
  /// byte-identical to one that never called this.  Wires the detector's
  /// evidence callbacks (beacon hearing / probe service) to engine state.
  void set_failure_detector(FailureDetector* detector);
  FailureDetector* failure_detector() { return detector_; }

  /// Whether `id` currently answers detector probe pings: configured, radio
  /// up, and not silently defecting.  SwimDetector's responder callback.
  bool serves_probes(NodeId id) const;

  /// Peers expelled by hardened mode (network-wide revocation): their claims
  /// are void, they are excluded from allocation, voting and replica groups.
  const std::set<NodeId>& quarantined_nodes() const { return quarantined_; }
  bool is_quarantined(NodeId id) const { return quarantined_.count(id) != 0; }
  std::uint64_t quarantines() const { return quarantines_; }
  std::uint64_t challenges_sent() const { return challenges_sent_; }

 private:
  // ---- helpers -----------------------------------------------------------
  QipNodeState& node(NodeId id);
  const QipNodeState& node(NodeId id) const;
  bool alive(NodeId id) const { return nodes_.contains(id); }
  bool is_head(NodeId id) const {
    const QipNodeState* st = nodes_.find(id);
    return st != nullptr && st->role == Role::kClusterHead;
  }

  void trace(QipMsg msg, NodeId from, NodeId to, std::uint32_t hops,
             const std::string& detail = "");

  /// Metered unicast carrying cumulative critical-path hops; returns false
  /// when unreachable.  `fn` runs at the receiver with total path hops.
  /// Templated so the receiver closure lands directly in the transport's
  /// small-buffer Receiver — no std::function box per send.  `this` is
  /// deliberately not captured: hops_base + a typical `this`-plus-ids
  /// handler fits ReceiverFn's 32-byte inline buffer exactly.
  template <typename F>
  bool send(NodeId from, NodeId to, QipMsg msg, Traffic traffic,
            std::uint64_t hops_base, F&& fn, const std::string& detail = "") {
    Transport::Receiver deliver =
        [hops_base, fn = std::forward<F>(fn)](NodeId,
                                              std::uint32_t d) mutable {
          fn(hops_base + d);
        };
    // Quorum-critical RPCs ride the reliable channel; under the paper's
    // reliable model (no active fault plan) it is a plain unicast either way.
    const auto hops =
        quorum_critical(msg)
            ? channel_.send(from, to, traffic, std::move(deliver))
            : transport().unicast(from, to, traffic, std::move(deliver));
    if (!hops) return false;
    trace(msg, from, to, *hops, detail);
    return true;
  }

  // ---- entry & configuration (qip_engine.cpp) ----------------------------
  void begin_bootstrap(NodeId id);
  void bootstrap_attempt(NodeId id);
  void become_first_head(NodeId id);
  void start_configuration(NodeId id);
  std::optional<NodeId> choose_common_allocator(NodeId requestor,
                                                std::uint64_t& extra_hops);

  void enqueue_request(NodeId allocator, PendingRequest req);
  void pump_pending(NodeId allocator);
  void begin_txn(NodeId allocator, const PendingRequest& req);

  /// Picks the next proposal for `txn` (own IPSpace first, then borrowed
  /// QuorumSpace addresses §V-A).  Returns false when nothing is available;
  /// `blocked_by_lock` distinguishes "space exists but another transaction
  /// holds it" (worth waiting) from genuine exhaustion.
  bool propose_next(ConfigTxn& txn, bool* blocked_by_lock = nullptr);
  /// Forwards the request to the allocator's configurer as a last resort
  /// ("acts as an agent", §V-A).  Returns false if no agent path exists.
  bool agent_forward(ConfigTxn& txn);

  void start_quorum_round(ConfigTxn& txn);
  void handle_quorum_clt(NodeId voter, NodeId allocator, NodeId owner,
                         std::uint64_t txn_id, std::uint32_t round,
                         const AddressBlock& proposal,
                         std::uint64_t hops_so_far);
  void handle_vote(std::uint64_t txn_id, std::uint32_t round, NodeId voter,
                   Vote vote, std::uint64_t timestamp,
                   std::uint64_t hops_so_far);
  std::uint32_t quorum_needed(const ConfigTxn& txn) const;
  void round_failed(ConfigTxn& txn, bool conflict);
  void release_grants(ConfigTxn& txn);
  void commit_config(ConfigTxn& txn);
  void finish_config_failure(ConfigTxn& txn);
  void complete_common(NodeId id, NodeId allocator, IpAddress addr,
                       NetworkId network_id, std::uint64_t total_hops,
                       std::uint32_t attempts);
  void complete_head(NodeId id, NodeId allocator, AddressBlock block,
                     NetworkId network_id, std::uint64_t total_hops,
                     std::uint32_t attempts);
  void join_qdsets(NodeId new_head);
  void end_txn(ConfigTxn& txn);

  /// Write round: pushes a fresh snapshot of `owner`'s space (as known by
  /// `source`, the owner itself or a replica holder) to the replica group.
  /// `txn_id`, when nonzero, also releases that transaction's permission at
  /// each recipient (the write round doubles as lock release).
  void replicate_update(NodeId source, NodeId owner, Traffic traffic,
                        std::uint64_t txn_id = 0);
  /// Delivers `snapshot` (of snapshot.owner's space) from `source` to the
  /// owner's replica group.  replicate_update = snapshot_space + this; the
  /// split exists so the adversary layer can push a *corrupted* snapshot
  /// through the same delivery path honest updates use.
  void push_snapshot(NodeId source, const ReplicaCopy& snapshot,
                     Traffic traffic, std::uint64_t txn_id = 0);
  /// Snapshot of `owner`'s space as seen from `source`.
  ReplicaCopy snapshot_space(NodeId source, NodeId owner) const;
  /// Applies an incoming snapshot at `holder`.  `source` is the sender
  /// (hardened mode screens demotions arriving from non-owners).
  void adopt_replica(NodeId holder, const ReplicaCopy& snapshot,
                     NodeId source);

  // ---- departure (qip_departure.cpp) --------------------------------------
  void depart_common(NodeId id);
  void depart_head(NodeId id);
  void handle_return_addr(NodeId receiver, NodeId leaver, NodeId configurer,
                          IpAddress addr, std::uint64_t hops,
                          std::uint32_t ttl);
  void free_owned_address(NodeId owner, IpAddress addr, Traffic traffic);

  // ---- maintenance (qip_maintenance.cpp) ----------------------------------
  void location_update_scan();
  void head_neighborhood_scan(NodeId head);
  void suspect(NodeId head, NodeId missing);
  void unsuspect(NodeId head, NodeId member);
  void shrink_quorum(NodeId head, NodeId missing);
  void grow_quorum(NodeId head);
  void add_qdset_link(NodeId a, NodeId b, Traffic traffic);
  void refresh_network_ids();
  void start_reclamation(NodeId initiator, NodeId dead_head);
  void handle_rec_rep(NodeId head, NodeId claimant, NodeId dead_head,
                      IpAddress addr, std::uint64_t hops);
  void finish_reclamation(NodeId dead_head);

  // ---- adversary & hardening (qip_hardening.cpp) --------------------------
  bool harden_on() const { return params_.harden.enabled; }
  /// The context's adversary controller when an active plan is installed,
  /// else nullptr — the one branch honest runs pay.
  AdversaryController* adversary_ctl() const;
  /// Is `id` running attack `kind` right now (per the active plan)?
  bool attack_active(NodeId id, AttackKind kind) const;
  /// Executes scheduled attacks once per hello tick (squats fire once,
  /// poison pushes repeat every tick their window is open).
  void run_adversary_tick();
  /// One-shot address theft: claim a victim's address + network id without
  /// any quorum round.  Returns true if a victim existed.
  bool perform_squat(NodeId attacker);
  /// Pushes corrupted replica snapshots (allocations demoted to free with
  /// boosted timestamps) for every space `attacker` holds a copy of.
  void perform_poison(NodeId attacker);
  /// Hardened hello-scan pass at `head`: challenge any nearby same-network
  /// claim its tables bind to a different live holder.
  void detect_squats(NodeId head);
  /// Sends kAddrChallenge to `claimant`; no kChallengeAck within
  /// challenge_timeout quarantines it.
  void challenge_claim(NodeId head, NodeId claimant, IpAddress addr);
  /// Tallies one suspicion point at `accuser` against `peer`; crossing
  /// HardenParams::suspicion_threshold quarantines the peer.
  void add_suspicion(NodeId accuser, NodeId peer, const char* why);
  /// Expels `culprit` network-wide (revocation flood charged to the
  /// accuser's component): excluded from clusters, groups and audits.
  void quarantine(NodeId accuser, NodeId culprit, const char* why);
  /// Hardened per-round deadline: closes a stalled quorum round, charging
  /// suspicion to voters that never answered.
  void harden_round_expired(std::uint64_t txn_id, std::uint32_t round);
  /// Hardened owner-side table merge: demotions (allocated -> free) in an
  /// incoming non-owner snapshot are verified against the recorded holder
  /// (one charged round trip) and stripped — with suspicion — when false.
  void merge_table_hardened(NodeId owner, NodeId source,
                            const AllocationTable& incoming);

  // ---- partition & merge (qip_partition.cpp) ------------------------------
  void merge_scan();
  void absorb_network(NodeId detector, NetworkId winner_id,
                      NetworkId loser_id);
  /// Reconciles two reconnected partitions of the same pool (same epoch
  /// nonce): duplicate addresses resolve by freshest record, losing holders
  /// reconfigure, head universes stay in the pool.
  void heal_partition(NodeId detector);
  void isolated_head_recovery(NodeId head);

  // ---- data ---------------------------------------------------------------
  QipParams params_;
  ReliableChannel channel_;
  ClusterView clusters_;
  /// SoA-style slab keyed by dense rank (docs/SCALE.md): O(1) lookup and
  /// contiguous ascending-id scans, replacing a std::map tree walk.
  NodeTable nodes_;
  std::map<std::uint64_t, ConfigTxn> txns_;
  std::map<NodeId, ReclaimTxn> reclaims_;
  /// Cooldown: last time a reclamation for this head was attempted, so a
  /// blocked (minority) reclamation is not retried every failed allocation.
  std::map<NodeId, SimTime> reclaim_attempted_;
  std::uint64_t next_txn_ = 1;
  /// Reused quorum-round scratch: the voting group under construction
  /// (sorted; cleared per round, capacity retained — docs/SCALE.md).
  std::vector<NodeId> round_group_;
  std::uint64_t config_failures_ = 0;
  std::uint64_t config_successes_ = 0;
  std::uint64_t reclaims_started_ = 0;
  std::uint64_t reclaims_completed_ = 0;
  std::uint64_t merges_handled_ = 0;
  EventHandle hello_timer_;
  bool hello_running_ = false;
  TraceSink trace_;
  FailureDetector* detector_ = nullptr;
  std::set<NodeId> quarantined_;
  std::uint64_t quarantines_ = 0;
  std::uint64_t challenges_sent_ = 0;
};

}  // namespace qip
