// The quorum-based autoconfiguration protocol (the paper's contribution).
//
// QipEngine implements AutoconfProtocol with the full §IV/§V machinery:
//
//   * on-entry clustering — a node with a head within ch_radius hops joins
//     as a common node, otherwise it is configured as a new cluster head
//     with half of its allocator's IPSpace;
//   * quorum voting — every allocation runs a read round (QUORUM_CLT /
//     QUORUM_CFM) over the owning head's replica group and a write round
//     (QUORUM_UPD) after commit.  Votes are *permissions* (mutual exclusion,
//     §II-C): a voter lends its copy of a space to one transaction at a
//     time, so two allocators can never commit the same address.  Dynamic
//     linear voting (§II-D) accepts an exactly-half quorum that includes
//     the distinguished copy — held by the group's lowest-id member, one
//     deterministic rule shared with view changes and reclamation (see
//     qip_types.hpp and DESIGN.md §6.2);
//   * address borrowing from QuorumSpace when IPSpace is exhausted, and
//     agent forwarding to the configurer when everything is exhausted (§V-A);
//   * movement: periodic UPDATE_LOC beyond update_threshold hops, or the
//     upon-leave update scheme (§IV-C);
//   * graceful departure for common nodes (RETURN_ADDR routed back to the
//     allocator) and cluster heads (block return to the configurer or the
//     smallest-block QDSet member, RESIGN, ALLOC_CHANGE to members);
//   * quorum adjustment (T_d shrink, REP_REQ probe, T_r, replica regrowth
//     below min_qdset, §V-B) and address reclamation (ADDR_REC flood,
//     REC_REP claims, §IV-D);
//   * partition & merge: network ids (lowest IP), isolated-head recovery,
//     and one-by-one rejoin of the larger-id network after a merge (§V-C).
//
// The engine is a deterministic event-driven coordinator: every inter-node
// interaction flows through the metered Transport, and a node's handlers
// touch only that node's own QipNodeState.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "cluster/cluster_view.hpp"
#include "core/qip_node.hpp"
#include "core/qip_params.hpp"
#include "core/qip_types.hpp"
#include "net/protocol.hpp"
#include "net/reliable_channel.hpp"

namespace qip {

class QipEngine : public AutoconfProtocol {
 public:
  QipEngine(Transport& transport, Rng& rng, QipParams params = {});
  ~QipEngine() override;

  std::string name() const override { return "QIP"; }

  // -- AutoconfProtocol ----------------------------------------------------
  void node_entered(NodeId id) override;
  void node_departing(NodeId id) override;
  void node_left(NodeId id) override;
  void node_vanished(NodeId id) override;
  void on_mobility_tick() override;
  std::uint64_t audit_domain(NodeId id) const override;

  /// Live state, not the ConfigRecord bookkeeping: internal reconfiguration
  /// paths (merge dissolution, isolated-head recovery, heal) move a node's
  /// address without re-running the entry flow, so the record's address can
  /// go stale while the node legitimately holds a different one.
  std::optional<IpAddress> address_of(NodeId id) const override {
    auto it = nodes_.find(id);
    if (it == nodes_.end()) return std::nullopt;
    return it->second.ip;
  }

  // -- Introspection (tests, figures) --------------------------------------
  const QipParams& params() const { return params_; }
  const ClusterView& clusters() const { return clusters_; }
  bool knows(NodeId id) const { return nodes_.count(id) != 0; }
  const QipNodeState& state_of(NodeId id) const;

  /// Average |QDSet| over current cluster heads (Fig. 12 input).
  double average_qdset_size() const;
  /// Average visible IP space (own + QuorumSpace) per head, in addresses
  /// (§V-A's "extends the IP space of a cluster head by up to 5.5 times").
  double average_visible_space() const;
  /// Average own IPSpace per head.
  double average_own_space() const;

  std::uint64_t config_failures() const { return config_failures_; }
  std::uint64_t config_successes() const { return config_successes_; }
  std::uint64_t reclaims_started() const { return reclaims_started_; }
  std::uint64_t reclaims_completed() const { return reclaims_completed_; }
  std::uint64_t merges_handled() const { return merges_handled_; }

  /// Runs the hello/maintenance scan once (normally driven by the periodic
  /// hello timer; exposed for tests).
  void hello_tick();

  /// Starts/stops the periodic hello timer.
  void start_hello();
  void stop_hello();

  /// Installs a trace sink receiving every protocol message (Table 1).
  void set_trace(TraceSink sink) { trace_ = std::move(sink); }

  /// The ack+retransmit channel quorum-critical RPCs ride under fault
  /// injection (pass-through otherwise).  Exposed so fault tests can read
  /// retransmission counts or force-disable it.
  ReliableChannel& channel() { return channel_; }
  const ReliableChannel& channel() const { return channel_; }

  /// True for RPCs that opt into the ReliableChannel: lock/vote/commit,
  /// replica sync, liveness probes and config/departure handshakes.  Entry
  /// requests, HELLO beacons, location updates and flood-borne messages stay
  /// best-effort (their own periodic retries tolerate loss).
  static bool quorum_critical(QipMsg m);

  /// All configured addresses: node -> address (sorted for determinism).
  std::map<NodeId, IpAddress> configured_addresses() const;

 private:
  // ---- helpers -----------------------------------------------------------
  QipNodeState& node(NodeId id);
  const QipNodeState& node(NodeId id) const;
  bool alive(NodeId id) const { return nodes_.count(id) != 0; }
  bool is_head(NodeId id) const {
    return alive(id) && nodes_.at(id).role == Role::kClusterHead;
  }

  void trace(QipMsg msg, NodeId from, NodeId to, std::uint32_t hops,
             const std::string& detail = "");

  /// Metered unicast carrying cumulative critical-path hops; returns false
  /// when unreachable.  `fn` runs at the receiver with total path hops.
  bool send(NodeId from, NodeId to, QipMsg msg, Traffic traffic,
            std::uint64_t hops_base,
            std::function<void(std::uint64_t total_hops)> fn,
            const std::string& detail = "");

  // ---- entry & configuration (qip_engine.cpp) ----------------------------
  void begin_bootstrap(NodeId id);
  void bootstrap_attempt(NodeId id);
  void become_first_head(NodeId id);
  void start_configuration(NodeId id);
  std::optional<NodeId> choose_common_allocator(NodeId requestor,
                                                std::uint64_t& extra_hops);

  void enqueue_request(NodeId allocator, PendingRequest req);
  void pump_pending(NodeId allocator);
  void begin_txn(NodeId allocator, const PendingRequest& req);

  /// Picks the next proposal for `txn` (own IPSpace first, then borrowed
  /// QuorumSpace addresses §V-A).  Returns false when nothing is available;
  /// `blocked_by_lock` distinguishes "space exists but another transaction
  /// holds it" (worth waiting) from genuine exhaustion.
  bool propose_next(ConfigTxn& txn, bool* blocked_by_lock = nullptr);
  /// Forwards the request to the allocator's configurer as a last resort
  /// ("acts as an agent", §V-A).  Returns false if no agent path exists.
  bool agent_forward(ConfigTxn& txn);

  void start_quorum_round(ConfigTxn& txn);
  void handle_quorum_clt(NodeId voter, NodeId allocator, NodeId owner,
                         std::uint64_t txn_id, std::uint32_t round,
                         const AddressBlock& proposal,
                         std::uint64_t hops_so_far);
  void handle_vote(std::uint64_t txn_id, std::uint32_t round, NodeId voter,
                   Vote vote, std::uint64_t timestamp,
                   std::uint64_t hops_so_far);
  std::uint32_t quorum_needed(const ConfigTxn& txn) const;
  void round_failed(ConfigTxn& txn, bool conflict);
  void release_grants(ConfigTxn& txn);
  void commit_config(ConfigTxn& txn);
  void finish_config_failure(ConfigTxn& txn);
  void complete_common(NodeId id, NodeId allocator, IpAddress addr,
                       NetworkId network_id, std::uint64_t total_hops,
                       std::uint32_t attempts);
  void complete_head(NodeId id, NodeId allocator, AddressBlock block,
                     NetworkId network_id, std::uint64_t total_hops,
                     std::uint32_t attempts);
  void join_qdsets(NodeId new_head);
  void end_txn(ConfigTxn& txn);

  /// Write round: pushes a fresh snapshot of `owner`'s space (as known by
  /// `source`, the owner itself or a replica holder) to the replica group.
  /// `txn_id`, when nonzero, also releases that transaction's permission at
  /// each recipient (the write round doubles as lock release).
  void replicate_update(NodeId source, NodeId owner, Traffic traffic,
                        std::uint64_t txn_id = 0);
  /// Snapshot of `owner`'s space as seen from `source`.
  ReplicaCopy snapshot_space(NodeId source, NodeId owner) const;
  /// Applies an incoming snapshot at `holder`.
  void adopt_replica(NodeId holder, const ReplicaCopy& snapshot);

  // ---- departure (qip_departure.cpp) --------------------------------------
  void depart_common(NodeId id);
  void depart_head(NodeId id);
  void handle_return_addr(NodeId receiver, NodeId leaver, NodeId configurer,
                          IpAddress addr, std::uint64_t hops,
                          std::uint32_t ttl);
  void free_owned_address(NodeId owner, IpAddress addr, Traffic traffic);

  // ---- maintenance (qip_maintenance.cpp) ----------------------------------
  void location_update_scan();
  void head_neighborhood_scan(NodeId head);
  void suspect(NodeId head, NodeId missing);
  void unsuspect(NodeId head, NodeId member);
  void shrink_quorum(NodeId head, NodeId missing);
  void grow_quorum(NodeId head);
  void add_qdset_link(NodeId a, NodeId b, Traffic traffic);
  void refresh_network_ids();
  void start_reclamation(NodeId initiator, NodeId dead_head);
  void handle_rec_rep(NodeId head, NodeId claimant, NodeId dead_head,
                      IpAddress addr, std::uint64_t hops);
  void finish_reclamation(NodeId dead_head);

  // ---- partition & merge (qip_partition.cpp) ------------------------------
  void merge_scan();
  void absorb_network(NodeId detector, NetworkId winner_id,
                      NetworkId loser_id);
  /// Reconciles two reconnected partitions of the same pool (same epoch
  /// nonce): duplicate addresses resolve by freshest record, losing holders
  /// reconfigure, head universes stay in the pool.
  void heal_partition(NodeId detector);
  void isolated_head_recovery(NodeId head);

  // ---- data ---------------------------------------------------------------
  QipParams params_;
  ReliableChannel channel_;
  ClusterView clusters_;
  std::map<NodeId, QipNodeState> nodes_;
  std::map<std::uint64_t, ConfigTxn> txns_;
  std::map<NodeId, ReclaimTxn> reclaims_;
  /// Cooldown: last time a reclamation for this head was attempted, so a
  /// blocked (minority) reclamation is not retried every failed allocation.
  std::map<NodeId, SimTime> reclaim_attempted_;
  std::uint64_t next_txn_ = 1;
  std::uint64_t config_failures_ = 0;
  std::uint64_t config_successes_ = 0;
  std::uint64_t reclaims_started_ = 0;
  std::uint64_t reclaims_completed_ = 0;
  std::uint64_t merges_handled_ = 0;
  EventHandle hello_timer_;
  bool hello_running_ = false;
  TraceSink trace_;
};

}  // namespace qip
