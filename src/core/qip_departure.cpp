// QipEngine: node movement-out and departure handling (§IV-C, graceful and
// abrupt).
#include "core/qip_engine.hpp"

#include <limits>

#include "util/logging.hpp"

namespace qip {

void QipEngine::node_departing(NodeId id) {
  if (!alive(id)) return;
  auto& st = node(id);
  switch (st.role) {
    case Role::kUnconfigured:
      break;  // nothing to return
    case Role::kCommonNode:
      depart_common(id);
      break;
    case Role::kClusterHead:
      depart_head(id);
      break;
  }
}

void QipEngine::node_left(NodeId id) {
  QipNodeState* st = nodes_.find(id);
  if (st == nullptr) return;
  st->cancel_timers();
  nodes_.erase(id);
  clusters_.remove(id);
  // Transactions this node was coordinating die with it; their requestors
  // retry through the failure path.
  std::vector<std::uint64_t> orphaned;
  for (const auto& [txn_id, txn] : txns_) {
    if (txn.allocator == id) orphaned.push_back(txn_id);
  }
  for (std::uint64_t txn_id : orphaned) {
    auto txn_it = txns_.find(txn_id);
    if (txn_it != txns_.end()) finish_config_failure(txn_it->second);
  }
  // The ConfigRecord is kept: latency figures aggregate over every
  // configuration ever completed, including departed nodes.
}

void QipEngine::node_vanished(NodeId id) {
  // Abrupt: identical local cleanup, but no messages were sent — peers keep
  // stale state about `id` until hello scans and reclamation catch up.
  node_left(id);
}

// ---------------------------------------------------------------------------
// Common node departure (§IV-C.1)
// ---------------------------------------------------------------------------

void QipEngine::depart_common(NodeId id) {
  auto& st = node(id);
  QIP_ASSERT(st.ip.has_value());
  const IpAddress addr = *st.ip;
  const NodeId configurer = st.configurer;

  // RETURN_ADDR (configurer, IP) to the nearest cluster head; the address is
  // then routed back to its allocator or a QDSet member of the allocator.
  auto nearest = clusters_.nearest_head(id);
  if (!nearest || !alive(*nearest)) {
    QIP_DEBUG << "node " << id << " leaves with no reachable head; " << addr
              << " leaks until reclamation";
    return;
  }
  const NodeId d = *nearest;
  send(id, d, QipMsg::kReturnAddr, Traffic::kDeparture, 0,
       [this, d, id, configurer, addr](std::uint64_t h) {
         handle_return_addr(d, id, configurer, addr, h, /*ttl=*/4);
       },
       addr.to_string());
  // The head acknowledges; the node leaves once the ack arrives (the harness
  // keeps it in the topology for the settle window).
  send(d, id, QipMsg::kReturnAck, Traffic::kDeparture, 0,
       [](std::uint64_t) {});
}

void QipEngine::handle_return_addr(NodeId receiver, NodeId leaver,
                                   NodeId configurer, IpAddress addr,
                                   std::uint64_t hops, std::uint32_t ttl) {
  if (!is_head(receiver)) return;
  auto& r = node(receiver);

  // Case 1: we own the address — free it and run the write round.
  if (r.owned_universe.contains(addr)) {
    free_owned_address(receiver, addr, Traffic::kDeparture);
    return;
  }

  // Case 2: we hold a replica of the owner: forward to the owner when alive,
  // else update the replica group directly (we are "a cluster head E which
  // belongs to the QDSet of the configurer", §IV-C.1).
  for (auto& [owner, rep] : r.replicas) {
    if (!rep.universe.contains(addr)) continue;
    if (alive(owner) && is_head(owner)) {
      send(receiver, owner, QipMsg::kReturnAddr, Traffic::kDeparture, hops,
           [this, owner, leaver, configurer, addr, ttl](std::uint64_t h) {
             handle_return_addr(owner, leaver, configurer, addr, h,
                                ttl > 0 ? ttl - 1 : 0);
           },
           addr.to_string());
    } else {
      rep.table.commit_free(addr, rep.table.get(addr).timestamp);
      // The replica may already consider the address free (e.g. a
      // reclamation missed this holder's claim); freeing is idempotent.
      // The version stays: only owners mint versions, the freed record
      // travels by its timestamp.
      if (!rep.free_pool.contains(addr)) rep.free_pool.insert(addr);
      replicate_update(receiver, owner, Traffic::kDeparture);
    }
    return;
  }

  // Case 3: forward toward the reported configurer.
  if (ttl > 0 && configurer != receiver && alive(configurer) &&
      is_head(configurer)) {
    send(receiver, configurer, QipMsg::kReturnAddr, Traffic::kDeparture, hops,
         [this, configurer, leaver, addr, ttl](std::uint64_t h) {
           handle_return_addr(configurer, leaver, configurer, addr, h,
                              ttl - 1);
         },
         addr.to_string());
    return;
  }

  QIP_DEBUG << "address " << addr << " returned by " << leaver
            << " could not be routed; leaks until reclamation";
}

void QipEngine::free_owned_address(NodeId owner, IpAddress addr,
                                   Traffic traffic) {
  if (!is_head(owner)) return;
  auto& o = node(owner);
  if (!o.owned_universe.contains(addr)) return;
  if (o.ip_space.contains(addr)) return;  // already free
  o.table.commit_free(addr, o.table.get(addr).timestamp);
  o.ip_space.insert(addr);
  ++o.version;
  replicate_update(owner, owner, traffic);
}

// ---------------------------------------------------------------------------
// Cluster head departure (§IV-C.2)
// ---------------------------------------------------------------------------

void QipEngine::depart_head(NodeId id) {
  auto& st = node(id);

  // Choose the recipient of our IP block: the configurer when still within
  // qdset_radius hops, else the QDSet member with the smallest IPSpace.
  NodeId target = kNoNode;
  if (st.configurer != id && alive(st.configurer) && is_head(st.configurer)) {
    auto d = topology().hop_distance(id, st.configurer);
    if (d && *d <= params_.qdset_radius) target = st.configurer;
  }
  if (target == kNoNode) {
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    for (NodeId h : st.qdset) {
      if (!alive(h) || !is_head(h)) continue;
      auto it = st.replicas.find(h);
      const std::uint64_t size =
          it != st.replicas.end() ? it->second.free_pool.size()
                                  : std::numeric_limits<std::uint64_t>::max();
      if (size < best) {
        best = size;
        target = h;
      }
    }
  }
  if (target == kNoNode) {
    // Fall back to any reachable head; if none, the block evaporates (last
    // head leaving the network).
    auto nearest = clusters_.nearest_head(id);
    if (nearest && alive(*nearest)) target = *nearest;
  }

  const auto members = clusters_.members_of(id);

  if (target != kNoNode) {
    // Hand the whole space over: universe, free pool, allocation records.
    ReplicaCopy payload = snapshot_space(id, id);
    // Our own identity address is released with us.  (It may already appear
    // free if a remote reclamation raced us and freed our record.)
    if (st.ip && payload.universe.contains(*st.ip)) {
      payload.table.commit_free(*st.ip, payload.table.get(*st.ip).timestamp);
      if (!payload.free_pool.contains(*st.ip))
        payload.free_pool.insert(*st.ip);
    }
    send(id, target, QipMsg::kBlockReturn, Traffic::kDeparture, 0,
         [this, target, members, leaver = id, payload](std::uint64_t) {
           if (!is_head(target)) return;
           auto& t = node(target);
           // Only adopt addresses we do not already own (overlap can occur
           // after an isolated-head recovery re-issued the pool, §V-C).
           const AddressBlock fresh = payload.universe.minus(t.owned_universe);
           t.owned_universe.merge(fresh);
           t.table.merge_newer(payload.table);
           t.ip_space = derive_free_pool(t.owned_universe, t.table);
           ++t.version;
           t.replicas.erase(leaver);
           t.qdset.erase(leaver);
           replicate_update(target, target, Traffic::kDeparture);
           // "Cluster head A or S will inform each node configured by U the
           // change of their allocator accordingly."
           for (NodeId m : members) {
             if (!alive(m)) continue;
             send(target, m, QipMsg::kAllocChange, Traffic::kDeparture, 0,
                  [this, m, target](std::uint64_t) {
                    if (!alive(m)) return;
                    auto& ms = node(m);
                    if (ms.role != Role::kCommonNode) return;
                    ms.configurer = target;
                    if (clusters_.is_head(target))
                      clusters_.reassign_member(m, target);
                  });
           }
         },
         st.owned_universe.to_string());
  }

  // Resign from every QDSet we are a member of.
  for (NodeId h : st.qdset) {
    if (!alive(h)) continue;
    send(id, h, QipMsg::kResign, Traffic::kDeparture, 0,
         [this, h, leaver = id](std::uint64_t) {
           if (!alive(h)) return;
           auto& hs = node(h);
           hs.qdset.erase(leaver);
           hs.replicas.erase(leaver);
           hs.suspect_timers.erase(leaver);
           hs.probe_timers.erase(leaver);
         });
  }
}

}  // namespace qip
