// Shared value types of the QIP engine: wire-message kinds (for tracing),
// replica copies, and in-flight transaction state.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "addr/address_block.hpp"
#include "addr/allocation_table.hpp"
#include "addr/ip_address.hpp"
#include "net/node_id.hpp"
#include "sim/event_queue.hpp"

namespace qip {

/// Message vocabulary of §IV/§V (plus the replica-exchange messages the
/// protocol description implies).  Used for traces and the Table-1 bench.
enum class QipMsg : std::uint8_t {
  kHello,
  kComReq,    ///< common node requests an address
  kComCfg,    ///< allocator configures common node
  kComAck,
  kChReq,     ///< entering node requests a cluster-head block
  kChPrp,     ///< allocator proposes a block
  kChCnf,     ///< requestor confirms the proposal
  kChCfg,     ///< allocator hands over the block
  kChAck,
  kQuorumClt, ///< read-round vote collection (doubles as lock acquire)
  kQuorumCfm, ///< vote: grant / busy / conflict
  kQuorumUpd, ///< write-round replica update (doubles as lock release)
  kQuorumRel, ///< abort-path lock release
  kQdJoin,    ///< new head distributes its replica to a QDSet member
  kQdWelcome, ///< QDSet member replies with its own replica
  kUpdateLoc,
  kReturnAddr,
  kReturnAck,
  kBlockReturn,
  kResign,      ///< departing head leaves its QDSet memberships
  kAllocChange, ///< new allocator informs adopted members
  kAddrRec,
  kRecRep,
  kRepReq,    ///< liveness probe before reclaiming a head
  kRepAck,
  kReclaimDone,
  kMergePoll, ///< merge coordination after partition detection
  kAddrChallenge, ///< hardened mode: prove ownership of a claimed address
  kChallengeAck,  ///< claimant's reply carrying its configurer's endorsement
};

const char* to_string(QipMsg m);

/// One protocol trace event (consumed by the Table-1 bench and debug logs).
struct TraceEvent {
  SimTime time = 0.0;
  QipMsg msg{};
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  std::uint32_t hops = 0;
  std::string detail;
};

using TraceSink = std::function<void(const TraceEvent&)>;

/// A copy of another cluster head's IP state, kept by its QDSet members
/// (§II-C: "storing a physical copy of an allocator's IP space at its
/// adjacent cluster heads").
struct ReplicaCopy {
  NodeId owner = kNoNode;
  /// Addresses the owner is responsible for.
  AddressBlock universe;
  /// Mirror of the owner's free pool (its IPSpace).
  AddressBlock free_pool;
  /// Per-address records with timestamps.
  AllocationTable table;
  /// Owner's version at last refresh.
  std::uint64_t version = 0;
  /// The owner's QDSet as of the last refresh — identifies the other voters
  /// for addresses in this universe.
  std::set<NodeId> owner_qdset;
};

/// Identity of a logical network (§V-C).  The paper uses the lowest IP in
/// the network; two networks bootstrapped independently both start at the
/// pool base, so a creation nonce disambiguates them.  Merge arbitration
/// picks the smallest (low, nonce) pair.
struct NetworkId {
  IpAddress low{};
  std::uint64_t nonce = 0;

  friend auto operator<=>(const NetworkId&, const NetworkId&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const NetworkId& id) {
  return os << id.low << '#' << (id.nonce & 0xffff);
}

/// Free pool derived from a universe and its allocation table: every address
/// without an allocated record.
inline AddressBlock derive_free_pool(const AddressBlock& universe,
                                     const AllocationTable& table) {
  AddressBlock out = universe;
  for (IpAddress a : table.known_addresses()) {
    if (table.allocated(a) && out.contains(a)) out.erase(a);
  }
  return out;
}

/// A quorum vote (§II-C implements mutual exclusion: a vote is a permission
/// the voter holds for one transaction at a time).
enum class Vote : std::uint8_t {
  kGrant = 0,    ///< record free, permission granted
  kBusy = 1,     ///< another transaction holds this voter's permission
  kConflict = 2, ///< voter's replica says the proposal is already allocated
};

/// In-flight configuration of one requestor, coordinated by its allocator.
struct ConfigTxn {
  std::uint64_t id = 0;
  /// Vote round within the transaction; stale-round votes are ignored.
  std::uint32_t round = 0;
  NodeId requestor = kNoNode;
  NodeId allocator = kNoNode;
  bool for_cluster_head = false;

  /// Proposal under vote: a single address (common node) or a block (new
  /// cluster head).
  IpAddress proposed{};
  AddressBlock proposed_block;
  /// Head whose IPSpace owns the proposal (== allocator except when
  /// borrowing from QuorumSpace, §V-A).
  NodeId owner = kNoNode;

  /// Copy-holders of the owner's space this round: owner + owner_qdset.
  std::uint32_t group_size = 0;
  std::vector<NodeId> voters;  ///< CLT recipients this round
  std::uint32_t confirms = 0;
  std::uint32_t busy = 0;
  std::uint32_t conflicts = 0;
  std::uint32_t outstanding = 0;
  /// Dynamic linear voting (§II-D): the distinguished copy is held by the
  /// group's lowest-id member — one deterministic rule shared by
  /// allocation, quorum-set view changes and reclamation, so two
  /// exactly-half sides can never both act.  (The paper nominates the
  /// owner's copy; the lowest-id member behaves identically except in
  /// two-member groups, where the owner's rule would deadlock against
  /// reclamation — see DESIGN.md.)
  NodeId distinguished = kNoNode;
  /// True once the distinguished copy is among the counted confirmations
  /// (immediately, when the allocator holds it).
  bool distinguished_ok = false;
  std::uint64_t latest_ts = 0;
  /// Voters currently holding our permission (released by UPD or REL).
  std::set<NodeId> granted;

  /// Critical-path hop accounting: hops accumulated before this round, and
  /// the cumulative hops when the quorum completed.
  std::uint64_t base_hops = 0;
  std::uint64_t commit_hops = 0;

  std::uint32_t attempt = 0;       ///< distinct proposals tried
  std::uint32_t busy_retries = 0;  ///< rounds abandoned to lock contention
  EventHandle retry_timer;

  /// Hardened mode (docs/ADVERSARY.md): voters that answered this round
  /// (any vote counts — suspicion attaches to silence, not dissent), which
  /// of them vetoed with kConflict (checked against the owner's own table
  /// when the round fails), and the per-round deadline that closes a
  /// stalled round early.  All empty/inert when hardening is off.
  std::set<NodeId> responded;
  std::set<NodeId> conflict_voters;
  EventHandle round_timer;
  bool round_open = false;

  /// Observability: open trace-span ids (0 = none) and the outcome label the
  /// transaction span closes with.  Written only behind ctx().tracing_on().
  std::uint64_t obs_span = 0;        ///< "config_txn" parent span
  std::uint64_t obs_round_span = 0;  ///< current "quorum_round" child span
  const char* obs_outcome = "handoff";
};

/// Reclamation of a vanished cluster head's address space (§IV-D).
struct ReclaimTxn {
  NodeId dead_head = kNoNode;
  NodeId initiator = kNoNode;
  /// address -> surviving holder that claimed it via REC_REP.
  std::map<IpAddress, NodeId> claims;
  EventHandle settle_timer;
  /// Observability: open "reclamation" trace-span id (0 = none).
  std::uint64_t obs_span = 0;
};

}  // namespace qip
