// Per-node protocol state (§IV-A data structures).
//
// The engine owns one QipNodeState per live node.  All fields are strictly
// node-local knowledge: the engine never lets one node's handler read
// another node's state except through a simulated message.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <set>

#include "addr/address_block.hpp"
#include "addr/allocation_table.hpp"
#include "addr/ip_address.hpp"
#include "cluster/cluster_view.hpp"
#include "core/qip_types.hpp"
#include "net/node_id.hpp"
#include "sim/event_queue.hpp"

namespace qip {

/// A configuration request waiting for the allocator's space lock.
struct PendingRequest {
  NodeId requestor = kNoNode;
  bool for_cluster_head = false;
  std::uint64_t hops_base = 0;
};

/// A voter-side permission: which transaction holds this copy of `owner`'s
/// space (quorum voting as mutual exclusion, §II-C).
struct SpaceLock {
  std::uint64_t txn_id = 0;
  EventHandle expiry;  ///< auto-release if the allocator dies mid-round
};

struct QipNodeState {
  // Hot plane: the scalars every per-tick scan reads (hello beacons,
  // location updates, merge boundaries) lead the struct so a scan over the
  // NodeTable slab touches the first cache line only; the cluster-head
  // containers below are the cold plane, reached just for heads
  // (docs/SCALE.md).
  Role role = Role::kUnconfigured;
  std::optional<IpAddress> ip;

  /// Cluster head that configured this node (§IV-C: the "configurer").
  NodeId configurer = kNoNode;
  /// Current administrator after UPDATE_LOC handoffs (common nodes only).
  NodeId administrator = kNoNode;

  /// Identity of the network this node belongs to (§V-C partition ids).
  NetworkId network_id{};

  // ---- cluster-head state (meaningful iff role == kClusterHead) ----

  /// Free addresses this head can assign (IPSpace, §IV-A).
  AddressBlock ip_space;
  /// Every address this head is responsible for, free or allocated.
  AddressBlock owned_universe;
  /// Allocation records for owned_universe.
  AllocationTable table;
  /// Bumped on every committed update; replicas carry the value they saw.
  std::uint64_t version = 0;

  /// Adjacent cluster heads holding our replica / whose replicas we hold.
  std::set<NodeId> qdset;
  /// Copies of QDSet members' IP state (QuorumSpace = union of free pools).
  std::map<NodeId, ReplicaCopy> replicas;

  /// Permissions currently granted, keyed by space owner (an owner of
  /// kNoNode never appears; a head's own space is keyed by its own id).
  std::map<NodeId, SpaceLock> space_locks;

  /// Configuration requests serialized behind the local space lock.
  std::deque<PendingRequest> pending;
  /// Transaction this head is currently coordinating (0 = none).
  std::uint64_t active_txn = 0;

  /// QDSet members that stopped responding: T_d shrink timers (§V-B).
  std::map<NodeId, EventHandle> suspect_timers;
  /// Members already probed with REP_REQ, awaiting T_r.
  std::map<NodeId, EventHandle> probe_timers;

  /// Hardened mode (docs/ADVERSARY.md): suspicion points this node has
  /// tallied against peers (unanswered votes, vetoes contradicting the
  /// owner's table).  Crossing HardenParams::suspicion_threshold
  /// quarantines the peer.  Empty when hardening is off.
  std::map<NodeId, std::uint32_t> suspicion;
  /// Hardened mode: outstanding address challenges — claimant whose hello
  /// contradicted our table, with the deadline timer for its kChallengeAck.
  std::map<NodeId, EventHandle> challenge_timers;

  /// Common nodes this head administers after UPDATE_LOC (node -> its
  /// configurer as reported, so address returns can be routed, §IV-C.1).
  std::map<NodeId, NodeId> administered;

  // ---- bootstrap ----
  std::uint32_t bootstrap_tries = 0;
  EventHandle bootstrap_timer;
  /// Failed configuration attempts by this (still unconfigured) node.
  std::uint32_t entry_retries = 0;
  /// When this node last began a configuration attempt (rescue scans leave
  /// recent attempts alone).
  SimTime last_entry_attempt = -1.0e9;

  /// Consecutive hello scans during which this head saw no other head
  /// (isolated-cluster-head detection, §V-C).
  std::uint32_t isolation_ticks = 0;

  /// Total free addresses visible: own IPSpace plus the replica pools of
  /// current QDSet members (the QuorumSpace of §IV-A).  Replicas retained
  /// for pending reclamation of departed heads are not counted — they are
  /// recovery state, not allocatable space.
  std::uint64_t visible_free() const {
    std::uint64_t n = ip_space.size();
    for (const auto& [owner, rep] : replicas) {
      if (qdset.count(owner)) n += rep.free_pool.size();
    }
    return n;
  }

  void cancel_timers() {
    bootstrap_timer.cancel();
    for (auto& [id, h] : suspect_timers) h.cancel();
    for (auto& [id, h] : probe_timers) h.cancel();
    for (auto& [id, h] : challenge_timers) h.cancel();
    for (auto& [owner, lock] : space_locks) lock.expiry.cancel();
  }
};

}  // namespace qip
