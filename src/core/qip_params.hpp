// Tunable parameters of the QIP protocol (§IV–§V).
//
// Defaults follow the paper where it gives values (cluster-head rule: no
// head within two hops; QDSet: adjacent heads within three hops; location
// update beyond three hops; replica floor |QDSet| >= 3) and sensible
// simulation constants where it does not (timer durations).
#pragma once

#include <cstdint>

#include "addr/ip_address.hpp"
#include "quorum/quorum_policy.hpp"
#include "sim/event_queue.hpp"

namespace qip {

struct QipParams {
  /// Total number of addresses in the network's pool.
  std::uint64_t pool_size = 1024;
  /// First address of the pool.
  IpAddress pool_base = kPoolBase;

  /// A new node becomes a common node iff a cluster head exists within this
  /// many hops (§II-B: "within two hops"); otherwise it becomes a head.
  std::uint32_t ch_radius = 2;

  /// QDSet membership radius: adjacent cluster heads within this many hops
  /// (§IV-A: "within three hops").
  std::uint32_t qdset_radius = 3;

  /// A common node sends UPDATE_LOC when it drifts more than this many hops
  /// from its configurer/administrator (§IV-C.1).
  std::uint32_t update_threshold = 3;

  /// Replica floor: heads recruit more QDSet members below this (§V-B).
  std::uint32_t min_qdset = 3;

  /// Hello beacon period, seconds (§IV-B).
  SimTime hello_interval = 1.0;

  /// First-node bootstrap: wait T_e between request broadcasts, give up and
  /// self-elect after max_r tries (§IV-B).  T_e is generous so a node that
  /// merely drifted out of range does not mint a second full pool.
  SimTime te = 1.0;
  std::uint32_t max_r = 3;

  /// Requestor-side retries after a failed configuration, and the backoff
  /// between them.
  std::uint32_t max_entry_retries = 5;
  SimTime entry_retry_backoff = 1.0;

  /// Quorum adjustment: T_d before shrinking the quorum set around an
  /// uncontactable head, then T_r for its REP_REQ liveness probe (§V-B).
  SimTime td = 2.0;
  SimTime tr = 2.0;

  /// Wait for REC_REP claims to arrive before closing a reclamation (s).
  SimTime reclaim_settle = 1.0;

  /// Reclamation probes each recorded-but-unclaimed holder before declaring
  /// its address vacant (a member may sit beyond the ADDR_REC flood).  The
  /// paper's protocol frees unclaimed addresses outright — cheaper, but it
  /// can re-issue a live node's address; the duplicate then persists until
  /// a partition-heal reconciliation notices it.
  bool reclaim_probe = true;

  /// ADDR_REC flood radius in hops.  §VI-E: "address reclamation is realized
  /// locally for our protocol" — the dead head's members live near where it
  /// served, so a scoped flood suffices (vs. [3]'s root-driven global one).
  std::uint32_t reclaim_radius = 3;

  /// Voter-side permission expiry: a granted vote auto-releases after this
  /// long so a dead allocator cannot wedge a space (s).
  SimTime lock_timeout = 1.0;

  /// Overall deadline for one configuration transaction (s).
  SimTime txn_timeout = 10.0;

  /// Backoff before retrying a round that lost to lock contention (s), and
  /// how many such retries are tolerated before the request fails.
  SimTime busy_backoff = 0.2;
  std::uint32_t max_busy_retries = 10;

  /// Distinct proposed addresses an allocator will try before giving up on
  /// one configuration request.
  std::uint32_t max_config_attempts = 8;

  /// Consecutive hello scans a head must see no other head before declaring
  /// itself isolated and restarting as a fresh network (§V-C).  Generous by
  /// default: mobility causes frequent transient disconnections.
  std::uint32_t isolation_patience = 10;

  /// §IV-C.1: periodic location updates (true) or the lighter upon-leave
  /// update scheme (false).  Figures 10/11 compare the two.
  bool periodic_location_update = true;

  /// §IV-B alternative: pick the neighborhood allocator with the largest
  /// available block rather than the nearest one.
  bool pick_largest_block = false;

  /// Quorum backend for every quorum-critical decision (vote tallying,
  /// maintenance quorate checks, hardened veto cross-checks).  kDynamicLinear
  /// is §II-D's rule — dynamic linear voting with the address owner as
  /// distinguished node; kMajority is the strict-majority fallback the
  /// figures compare against; kSlices derives federated flat-majority
  /// slices from QDSet membership (docs/QUORUM.md).  Defaults through
  /// QIP_QUORUM so env/--quorum selection reaches every internally-built
  /// QipParams; malformed values exit 2 at construction.
  QuorumBackend quorum = quorum_backend_from_env();

  /// §V-A address borrowing from QuorumSpace (false = IPSpace only, with
  /// agent forwarding as the sole fallback — the ablation bench measures
  /// what borrowing buys).
  bool enable_borrowing = true;

  /// Hello cross-checking: a node that hears a same-network neighbor claim
  /// its own address — or a head that hears a claim its table binds to a
  /// different holder, or overlaps universes with a same-network head —
  /// runs the component-wide freshness reconciliation of a heal (§V-C
  /// resolves conflicts at contact).  Off by default: the paper's reliable
  /// model leaves such reclamation-reissue races to settle through the
  /// ordinary merge machinery, and the figure benches reproduce those exact
  /// message flows.  Fault experiments turn it on, because lost REC_REP /
  /// replica-sync messages make stranded-holder conflicts common enough to
  /// need active repair.
  bool heal_on_conflict_evidence = false;

  /// Quorum-critical RPCs (lock/vote/commit, replica sync, REP_REQ, config
  /// handshakes) ride the ack+retransmit ReliableChannel.  The channel only
  /// engages while the transport's fault plan is active — under the paper's
  /// reliable model it is a zero-overhead pass-through — so this knob
  /// matters only to fault experiments (the ablation: what does reliability
  /// buy under loss?).  HELLO beacons and floods always stay best-effort.
  bool reliable_rpcs = true;

  /// ReliableChannel tuning: first ack deadline, per-retry backoff factor,
  /// and retransmissions after the initial attempt.  The defaults retire a
  /// message in ~2.5 s worst case, well inside txn_timeout.
  SimTime rpc_retry_timeout = 0.08;
  double rpc_retry_backoff = 2.0;
  std::uint32_t rpc_max_retries = 5;

  /// Adversary hardening (docs/ADVERSARY.md).  Off by default: honest runs
  /// do see stalled quorum rounds (a voter drifting out of range mid-round
  /// leaves the CFM undeliverable until txn_timeout), so the hardened round
  /// timer would fire — and perturb message flows — in every figure bench.
  /// The adversary tests and ablation_adversary enable it explicitly.
  struct HardenParams {
    bool enabled = false;
    /// Hardened per-round deadline: a quorum round whose votes have not all
    /// arrived by then is closed early, non-responders gain suspicion, and
    /// the round retries through the ordinary busy-backoff path.
    SimTime round_timeout = 2.0;
    /// Suspicion points a peer accumulates before being quarantined.
    /// Service suspicion (unanswered quorum votes, timed-out challenges)
    /// and conflict suspicion (vetoes contradicting the owner's own table)
    /// are tallied separately per accuser but share this threshold.
    std::uint32_t suspicion_threshold = 3;
    /// Deadline for a kChallengeAck after a head challenges an address
    /// claim that contradicts its table (squat detection).
    SimTime challenge_timeout = 2.0;
  };
  HardenParams harden;
};

}  // namespace qip
