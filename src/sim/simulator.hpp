// Discrete-event simulator core: a virtual clock driving an event queue.
//
// All protocol logic runs as event callbacks; the simulator is strictly
// single-threaded and deterministic.  Time only moves forward; scheduling
// into the past is an invariant violation.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "sim/event_queue.hpp"

namespace qip {

class SimContext;
SimContext& process_context();

class Simulator {
 public:
  /// A simulator bound to `ctx`; null means the process-default context.
  /// Everything downstream of a Simulator (Transport, protocols, World)
  /// reaches its logger/recorder/metrics through ctx().
  explicit Simulator(SimContext* ctx = nullptr) : ctx_(ctx) {}

  SimContext& ctx() const { return ctx_ ? *ctx_ : process_context(); }
  void set_context(SimContext* ctx) { ctx_ = ctx; }

  SimTime now() const { return now_; }
  /// Scheduler backend this simulator's queue runs on (QIP_SCHED).
  SchedulerKind scheduler() const { return queue_.backend(); }
  std::uint64_t events_executed() const { return executed_; }
  bool idle() const { return queue_.empty(); }
  /// Upper bound: includes cancelled entries still buried in the heap.
  std::size_t pending_events() const { return queue_.size(); }
  /// Exact count of live scheduled events (see EventQueue::live_size).
  std::size_t live_events() const { return queue_.live_size(); }

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).  Any
  /// callable converts to EventFn; captures up to 64 bytes stay inline, so
  /// steady-state scheduling performs no heap allocation.
  EventHandle after(SimTime delay, EventFn fn) {
    QIP_ASSERT_MSG(delay >= 0.0, "negative delay " << delay);
    return queue_.schedule(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at absolute time `at` (at >= now()).
  EventHandle at(SimTime at, EventFn fn) {
    QIP_ASSERT_MSG(at >= now_, "scheduling into the past: " << at << " < "
                                                            << now_);
    return queue_.schedule(at, std::move(fn));
  }

  /// Fire-and-forget after(): same ordering (the queue's sequence counter
  /// advances identically), but no cancellation handle is created.  Use for
  /// timers that are never cancelled — it skips the handle's weak-reference
  /// bookkeeping on the scheduler hot path.
  void post(SimTime delay, EventFn fn) {
    QIP_ASSERT_MSG(delay >= 0.0, "negative delay " << delay);
    queue_.post(now_ + delay, std::move(fn));
  }

  /// Executes the single earliest event; returns false when idle.
  bool step();

  /// Runs until the queue drains or `horizon` is reached (events exactly at
  /// the horizon still run).  Returns the number of events executed.
  std::uint64_t run(SimTime horizon = std::numeric_limits<SimTime>::infinity());

  /// Requests run()/step() to stop after the current event returns.
  void stop() { stopping_ = true; }

  /// Drops all pending events and resets the stop flag (the clock keeps its
  /// value so re-scheduling remains monotonic).
  void reset_events() {
    queue_.clear();
    stopping_ = false;
  }

  /// Registers a read-only observer invoked after an executed event at most
  /// once per `period` of simulated time.  Probes are NOT events: they never
  /// occupy the queue, so a drain loop (World::settle) terminates exactly as
  /// it would without them — which is what lets an auditor run always-on.
  /// Probes must not schedule events or mutate simulation state.
  /// Returns a token for remove_probe().
  std::uint64_t add_probe(SimTime period, std::function<void()> probe);
  void remove_probe(std::uint64_t token);

 private:
  struct Probe {
    std::uint64_t token;
    SimTime period;
    SimTime next;
    std::function<void()> fn;
  };

  void run_probes();

  SimContext* ctx_ = nullptr;
  EventQueue queue_;
  SimTime now_ = 0.0;
  std::uint64_t executed_ = 0;
  bool stopping_ = false;
  std::vector<Probe> probes_;
  std::uint64_t next_probe_token_ = 1;
};

}  // namespace qip
