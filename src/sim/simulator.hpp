// Discrete-event simulator core: a virtual clock driving an event queue.
//
// All protocol logic runs as event callbacks; the simulator is strictly
// single-threaded and deterministic.  Time only moves forward; scheduling
// into the past is an invariant violation.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "sim/event_queue.hpp"

namespace qip {

class Simulator {
 public:
  SimTime now() const { return now_; }
  std::uint64_t events_executed() const { return executed_; }
  bool idle() const { return queue_.empty(); }
  std::size_t pending_events() const { return queue_.size(); }

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventHandle after(SimTime delay, std::function<void()> fn) {
    QIP_ASSERT_MSG(delay >= 0.0, "negative delay " << delay);
    return queue_.schedule(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` at absolute time `at` (at >= now()).
  EventHandle at(SimTime at, std::function<void()> fn) {
    QIP_ASSERT_MSG(at >= now_, "scheduling into the past: " << at << " < "
                                                            << now_);
    return queue_.schedule(at, std::move(fn));
  }

  /// Executes the single earliest event; returns false when idle.
  bool step();

  /// Runs until the queue drains or `horizon` is reached (events exactly at
  /// the horizon still run).  Returns the number of events executed.
  std::uint64_t run(SimTime horizon = std::numeric_limits<SimTime>::infinity());

  /// Requests run()/step() to stop after the current event returns.
  void stop() { stopping_ = true; }

  /// Drops all pending events and resets the stop flag (the clock keeps its
  /// value so re-scheduling remains monotonic).
  void reset_events() {
    queue_.clear();
    stopping_ = false;
  }

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
  std::uint64_t executed_ = 0;
  bool stopping_ = false;
};

}  // namespace qip
