#include "sim/sim_context.hpp"

namespace qip {

SimContext::SimContext(std::uint64_t root_seed)
    : owned_logger_(std::make_unique<Logger>()),
      owned_recorder_(std::make_unique<obs::TraceRecorder>()),
      owned_metrics_(std::make_unique<obs::MetricsRegistry>()),
      logger_(owned_logger_.get()),
      recorder_(owned_recorder_.get()),
      metrics_(owned_metrics_.get()),
      rng_(root_seed),
      root_seed_(root_seed) {}

SimContext::SimContext(Replica, const SimContext& parent,
                       std::uint64_t root_seed)
    : SimContext(root_seed) {
  logger_->set_level(parent.logger_->level());
  logger_->set_sink(&log_buffer_);
  if (parent.recorder_->enabled()) {
    recorder_->set_capacity(parent.recorder_->capacity());
    recorder_->enable();
  }
}

SimContext::SimContext(ProcessTag)
    : logger_(&process_logger()),
      recorder_(&obs::process_recorder()),
      metrics_(&obs::process_metrics()),
      rng_(0),
      root_seed_(0) {}

std::uint64_t SimContext::derive_seed(std::uint64_t stream) const {
  SplitMix64 sm(root_seed_ ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  return sm.next();
}

void SimContext::absorb(SimContext& cell) {
  if (recorder_->enabled() && cell.recorder_->enabled()) {
    recorder_->merge_from(*cell.recorder_);
    cell.recorder_->clear();
  }
  metrics_->merge_from(*cell.metrics_);
  logger_->write_raw(cell.log_buffer_.str());
  logger_->add_warnings(cell.logger_->warning_count());
  cell.log_buffer_.str("");
  cell.logger_->reset_counters();
}

SimContext& process_context() {
  static SimContext ctx{SimContext::ProcessTag{}};
  return ctx;
}

}  // namespace qip
