#include "sim/event_queue.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace qip {

SchedulerKind scheduler_kind_from_env() {
  const char* env = std::getenv("QIP_SCHED");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "calendar") == 0) {
    return SchedulerKind::kCalendar;
  }
  if (std::strcmp(env, "heap") == 0) return SchedulerKind::kHeap;
  std::fprintf(stderr,
               "QIP_SCHED=%s is not a scheduler backend "
               "(expected \"heap\" or \"calendar\")\n",
               env);
  std::exit(2);
}

namespace detail {

/// Ordering key mirrored out of the slot so backends never touch callables.
struct Key {
  SimTime time;
  std::uint64_t seq;
  std::uint32_t slot;
};

/// Strict total order all backends reproduce: earlier time first, FIFO
/// (lower sequence) within a timestamp.
inline bool key_less(SimTime at, std::uint64_t as, SimTime bt,
                     std::uint64_t bs) {
  if (at != bt) return at < bt;
  return as < bs;
}

// Backend contract (duck-typed; EventQueueCore dispatches with one
// predictable branch on the queue's kind rather than a vtable, so the O(1)
// calendar enqueue inlines into the scheduling hot path): a multiset of Keys
// with peek/pop at the minimum.  peek()/pop() may mutate internal cursors
// (the calendar queue advances and re-sorts), hence no const methods.

/// Reference backend: std::push_heap/pop_heap over a flat vector.  O(log n)
/// per operation but allocation-free at steady state (capacity is retained).
class HeapBackend final {
 public:
  void push(const Key& k) {
    heap_.push_back(k);
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  std::size_t size() const { return heap_.size(); }

  Key peek() {
    QIP_DCHECK(!heap_.empty());
    return heap_.front();
  }

  Key pop() {
    QIP_DCHECK(!heap_.empty());
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    const Key k = heap_.back();
    heap_.pop_back();
    return k;
  }

  void clear() { heap_.clear(); }

 private:
  struct Later {
    bool operator()(const Key& a, const Key& b) const {
      return key_less(b.time, b.seq, a.time, a.seq);
    }
  };
  std::vector<Key> heap_;
};

/// Calendar queue (Brown '88) with lazily-sorted buckets (the "lazy queue" /
/// ladder-queue refinement): keys hash to buckets by virtual bucket index
/// vb(t) = floor(t / width), buckets are kept UNSORTED — an enqueue is a
/// blind O(1) append that reads no cold memory — and a bucket's current-year
/// keys are gathered, sorted once, and served from a contiguous service
/// vector when the dequeue cursor reaches it.  Sorting amortizes to
/// O(log occupancy) warm comparisons per event, so both operations stay O(1)
/// amortized with tiny constants even at 10^6 pending events.
///
/// Keys live as intrusive singly-linked nodes in a slab with a free list,
/// and the service vector's capacity is pre-reserved to the live-key count
/// at resize time: after the pending-event peak has been reached,
/// enqueue/dequeue touch no allocator at all, no matter how the time
/// distribution shifts.
///
/// A classic calendar only re-samples its bucket width on count-triggered
/// resizes, so a stationary workload whose *time distribution* shifts (e.g.
/// a uniform prefill draining into hold-model churn) strands it with a
/// stale width forever.  Dequeue-side work statistics (empty-window
/// advances, future-year re-walks) trigger a same-size resize — and the
/// width estimator samples the density where the cursor actually operates
/// (the median adjacent gap of the 65 earliest keys), not the global mean
/// gap a far-future tail would skew.
///
/// Determinism: the service set is exactly { key : vb(key.time) <= cur_vb_ }
/// and vb is monotone, so every service key orders before every buried key;
/// within the service the full (time, seq) comparison applies.  Pop order is
/// therefore exactly (time, seq) ascending — bit-identical to HeapBackend —
/// regardless of how floating-point rounding assigns times to buckets.
class CalendarBackend final {
 public:
  CalendarBackend() { buckets_.assign(kMinBuckets, Bucket{}); }

  void push(const Key& k) {
    const std::uint64_t vb = vbucket(k.time);
    if (count_ == 0) {
      cur_vb_ = vb;
    } else if (vb == cur_vb_ && !service_.empty()) {
      // The key lands in the window currently being served: splice it into
      // the (descending) service vector so it pops in exact (time, seq)
      // order with its window peers.
      const auto it = std::upper_bound(
          service_.begin(), service_.end(), k,
          [](const Key& a, const Key& b) {
            return key_less(b.time, b.seq, a.time, a.seq);
          });
      // Insert movement is dequeue-side work in disguise: a too-wide window
      // funnels every push through this path and the memmove bill grows
      // linearly with service size.  Charge it to the degradation statistic
      // (one unit per 16 elements moved — roughly the cost ratio against a
      // bucket advance) so a stale width can't hide behind a service vector
      // that never drains.
      work_ += (static_cast<std::uint64_t>(service_.end() - it) >> 4) + 1;
      service_.insert(it, k);
      ++count_;
      reserve_service();
      if (work_ > 8 * (served_ + kWindow)) resize(mask_ + 1);
      return;
    } else if (vb < cur_vb_) {
      // Cursor rewind (e.g. a zero-delay event behind a sparse gap): any
      // half-served window goes back to its bucket — order within a bucket
      // is irrelevant, it re-sorts when the cursor returns.
      flush_service();
      cur_vb_ = vb;
    }
    append_node(vb & mask_, acquire_node(k));
    ++count_;
    reserve_service();
    if (count_ > (mask_ + 1) * 2) resize((mask_ + 1) * 2);
  }

  std::size_t size() const { return count_; }

  Key peek() {
    if (service_.empty()) refill_service();
    return service_.back();
  }

  Key pop() {
    if (service_.empty()) refill_service();
    const Key k = service_.back();
    service_.pop_back();
    --count_;
    if (count_ * 2 < mask_ + 1 && mask_ + 1 > kMinBuckets) {
      resize((mask_ + 1) / 2);
    }
    return k;
  }

  void clear() {
    buckets_.assign(buckets_.size(), Bucket{});
    nodes_.clear();
    node_free_.clear();
    service_.clear();
    count_ = 0;
    cur_vb_ = 0;
    work_ = served_ = 0;
  }

 private:
  static constexpr std::size_t kMinBuckets = 16;  // power of two
  static constexpr std::uint32_t kNil = 0xffffffffu;
  /// Floor on the served-event denominator of the degradation trigger, so a
  /// few expensive refills on a small queue don't force resize thrash.
  static constexpr std::uint64_t kWindow = 4096;
  /// Width estimator sample size: the kSample earliest pending times.
  static constexpr std::size_t kSample = 65;

  struct Node {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t next;
  };

  /// One calendar bucket: UNSORTED keys split across two singly-linked
  /// sub-lists by node-index parity.  Two independent chains double the
  /// memory-level parallelism of a gather (chain hops are serial cold reads;
  /// two in flight halve the stall time), and the split is invisible to
  /// ordering because a gather sorts everything it collects.
  struct Bucket {
    std::uint32_t head[2] = {kNil, kNil};
    std::uint32_t tail[2] = {kNil, kNil};
    bool occupied() const { return head[0] != kNil || head[1] != kNil; }
  };

  std::uint64_t vbucket(SimTime t) const {
    // Sim times are finite and non-negative (schedule() asserts finiteness
    // and the clock starts at 0); clamp defensively so a pathological time
    // degrades to a far bucket, never UB.  Multiplying by the precomputed
    // reciprocal keeps this off the FP-divide unit; any monotone rounding
    // is fine because both hashing and the cursor scan share this function.
    const double q = t * inv_width_;
    if (!(q > 0.0)) return 0;
    if (q >= 9.2e18) return static_cast<std::uint64_t>(9.2e18);
    return static_cast<std::uint64_t>(q);
  }

  std::uint32_t acquire_node(const Key& k) {
    std::uint32_t ni;
    if (!node_free_.empty()) {
      ni = node_free_.back();
      node_free_.pop_back();
    } else {
      nodes_.emplace_back();
      ni = static_cast<std::uint32_t>(nodes_.size() - 1);
    }
    Node& n = nodes_[ni];
    n.time = k.time;
    n.seq = k.seq;
    n.slot = k.slot;
    return ni;
  }

  void release_node(std::uint32_t ni) { node_free_.push_back(ni); }

  /// Keeps every internal vector's capacity >= count_ + 1 as the live-key
  /// count grows (one bucket can hold at most every key; the node slab holds
  /// at most every live key; resize scratch holds at most every buried
  /// node).  Amortized: reallocation only happens while count_ is reaching a
  /// new high-water mark, so steady-state schedule/cancel/pop — including a
  /// degradation-triggered resize — touches no allocator at all.
  void reserve_service() {
    if (service_.capacity() < count_ + 1) {
      const std::size_t cap = 2 * (count_ + 1);
      service_.reserve(cap);
      scratch_.reserve(cap);
      sample_.reserve(cap);
      nodes_.reserve(cap);
      node_free_.reserve(cap);
      gaps_.reserve(kSample);
    }
  }

  /// Blind append — no reads of cold node memory, only stores.  The
  /// sub-list is picked by index parity: stateless, and stable for a node
  /// across keep-list rebuilds.
  void append_node(std::size_t b, std::uint32_t ni) {
    Bucket& bk = buckets_[b];
    const int h = static_cast<int>(ni & 1u);
    nodes_[ni].next = kNil;
    if (bk.tail[h] == kNil) {
      bk.head[h] = ni;
    } else {
      nodes_[bk.tail[h]].next = ni;
    }
    bk.tail[h] = ni;
  }

  /// Returns a half-served window's keys to their buckets (cursor rewind or
  /// resize).  Keys are re-bucketed individually — after a resize the old
  /// window spans several new-width windows.  The nodes released when the
  /// window was gathered are still on the free list, so this never
  /// allocates.
  void flush_service() {
    for (const Key& k : service_) {
      append_node(vbucket(k.time) & mask_, acquire_node(k));
    }
    service_.clear();
  }

  /// Advances cur_vb_ to the next non-empty window and gathers its keys into
  /// the service vector, sorted descending so back() is the global minimum.
  /// Invariant on entry: no live key has vb < cur_vb_ (pushes rewind the
  /// cursor, the cursor only advances past windows verified empty).
  void refill_service() {
    QIP_ASSERT_MSG(count_ > 0, "calendar peek/pop on empty backend");
    locate_and_gather();
    // Degradation trigger: when dequeue-side overhead (empty-window advances
    // plus future-year re-walks) dwarfs the events actually served, the
    // width has gone stale for the current time distribution — a calendar
    // never resizes on a stationary count, so a distribution shift must
    // force a re-sample.  The resize flushes the just-gathered window back
    // into (new-width) buckets, so gather again; work_/served_ reset on
    // resize, which bounds this to one extra gather per trigger.
    if (work_ > 8 * (served_ + kWindow)) {
      resize(mask_ + 1);
      locate_and_gather();
    }
  }

  /// Advances cur_vb_ to the next non-empty window and fills the service
  /// vector from it.
  void locate_and_gather() {
    const std::size_t n = mask_ + 1;
    for (std::size_t checked = 0; checked <= n; ++checked) {
      Bucket& bk = buckets_[cur_vb_ & mask_];
      if (bk.occupied() && gather_window(bk)) return;
      ++cur_vb_;
      ++work_;
    }
    // A whole year scanned without a hit (sparse far-future events): jump
    // straight to the window of the global minimum instead of spinning
    // bucket by bucket.
    const Node* best = nullptr;
    for (const Bucket& bk : buckets_) {
      for (const std::uint32_t head : bk.head) {
        for (std::uint32_t ni = head; ni != kNil; ni = nodes_[ni].next) {
          const Node& cand = nodes_[ni];
          if (best == nullptr ||
              key_less(cand.time, cand.seq, best->time, best->seq)) {
            best = &cand;
          }
        }
      }
    }
    QIP_DCHECK(best != nullptr);
    cur_vb_ = vbucket(best->time);
    const bool ok = gather_window(buckets_[cur_vb_ & mask_]);
    QIP_DCHECK(ok);
    (void)ok;
  }

  /// Partitions bucket `bk`: keys of the current window move (sorted) into
  /// the service vector, future-year keys stay buried in append order.
  bool gather_window(Bucket& bk) {
    std::uint32_t cur[2] = {bk.head[0], bk.head[1]};
    std::uint32_t keep_head[2] = {kNil, kNil};
    std::uint32_t keep_tail[2] = {kNil, kNil};
    if (cur[0] != kNil) __builtin_prefetch(&nodes_[cur[0]]);
    if (cur[1] != kNil) __builtin_prefetch(&nodes_[cur[1]]);
    // Lockstep walk of both sub-lists keeps two chain loads in flight.
    while (cur[0] != kNil || cur[1] != kNil) {
      for (int h = 0; h < 2; ++h) {
        const std::uint32_t ni = cur[h];
        if (ni == kNil) continue;
        const Node& nd = nodes_[ni];
        const std::uint32_t next = nd.next;
        if (next != kNil) __builtin_prefetch(&nodes_[next]);
        if (vbucket(nd.time) <= cur_vb_) {
          service_.push_back(Key{nd.time, nd.seq, nd.slot});
          release_node(ni);
        } else {
          // Same physical bucket, later year: keep buried.
          nodes_[ni].next = kNil;
          if (keep_tail[h] == kNil) {
            keep_head[h] = ni;
          } else {
            nodes_[keep_tail[h]].next = ni;
          }
          keep_tail[h] = ni;
          ++work_;
        }
        cur[h] = next;
      }
    }
    for (int h = 0; h < 2; ++h) {
      bk.head[h] = keep_head[h];
      bk.tail[h] = keep_tail[h];
    }
    if (service_.empty()) return false;
    std::sort(service_.begin(), service_.end(),
              [](const Key& a, const Key& b) {
                return key_less(b.time, b.seq, a.time, a.seq);
              });
    served_ += service_.size();
    return true;
  }

  void resize(std::size_t nbuckets) {
    // Env-gated diagnostic: one line per resize makes width-adaptation
    // behaviour visible without a profiler (see docs/SIMULATOR.md).
    if (std::getenv("QIP_SCHED_TRACE")) {
      std::fprintf(stderr, "resize nbuckets=%zu count=%zu width=%g work=%llu served=%llu\n",
                   nbuckets, count_, width_, (unsigned long long)work_, (unsigned long long)served_);
    }
    // Collect every buried node, re-sample the bucket width, then relink.
    // The width estimator measures event density where the dequeue cursor
    // actually operates — the smallest pending times — not the global mean
    // gap, which a far-future tail (or a drained prefill) would skew by
    // orders of magnitude: take the kSample earliest times and use three
    // times their median adjacent positive gap.  A degenerate neighborhood
    // (all equal times) keeps the old width.
    scratch_.clear();
    for (const Bucket& bk : buckets_) {
      for (const std::uint32_t head : bk.head) {
        for (std::uint32_t ni = head; ni != kNil; ni = nodes_[ni].next) {
          scratch_.push_back(ni);
        }
      }
    }
    sample_.clear();
    for (const std::uint32_t ni : scratch_) {
      sample_.push_back(nodes_[ni].time);
    }
    for (const Key& k : service_) sample_.push_back(k.time);
    if (sample_.size() > kSample) {
      std::nth_element(sample_.begin(), sample_.begin() + (kSample - 1),
                       sample_.end());
      sample_.resize(kSample);
    }
    std::sort(sample_.begin(), sample_.end());
    gaps_.clear();
    for (std::size_t i = 1; i < sample_.size(); ++i) {
      const double gap = sample_[i] - sample_[i - 1];
      if (gap > 0.0) gaps_.push_back(gap);
    }
    if (!gaps_.empty()) {
      std::nth_element(gaps_.begin(), gaps_.begin() + gaps_.size() / 2,
                       gaps_.end());
      const double w = 3.0 * gaps_[gaps_.size() / 2];
      if (w > 0.0 && std::isfinite(w)) {
        width_ = w;
        inv_width_ = 1.0 / w;
      }
    }
    buckets_.assign(nbuckets, Bucket{});
    mask_ = nbuckets - 1;
    work_ = served_ = 0;
    bool first = true;
    for (const std::uint32_t ni : scratch_) {
      const std::uint64_t vb = vbucket(nodes_[ni].time);
      if (first || vb < cur_vb_) {
        cur_vb_ = vb;
        first = false;
      }
      append_node(vb & mask_, ni);
    }
    // A half-served window goes back into (new-width) buckets: under the new
    // width it may span several windows, which would break the push-side
    // service classification if it stayed out.  The next refill re-gathers.
    for (const Key& k : service_) {
      const std::uint64_t vb = vbucket(k.time);
      if (first || vb < cur_vb_) {
        cur_vb_ = vb;
        first = false;
      }
      append_node(vb & mask_, acquire_node(k));
    }
    service_.clear();
    if (first) cur_vb_ = 0;  // no keys at all
    // One bucket can hold at most every live key: with capacity for all of
    // them, steady-state refills can never grow the service vector, which
    // keeps the zero-allocation guarantee unconditional.
    service_.reserve(count_ + 1);
  }

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> node_free_;
  std::vector<Bucket> buckets_;
  std::vector<Key> service_;            // descending; back() = global min
  std::vector<std::uint32_t> scratch_;  // resize-only, capacity retained
  std::vector<SimTime> sample_;         // resize-only, capacity retained
  std::vector<double> gaps_;            // resize-only, capacity retained
  std::size_t count_ = 0;

  std::size_t mask_ = kMinBuckets - 1;
  std::uint64_t cur_vb_ = 0;
  double width_ = 1.0;
  double inv_width_ = 1.0;
  std::uint64_t work_ = 0;    ///< empty-window advances + future-year walks
  std::uint64_t served_ = 0;  ///< keys served since the last resize
};

/// Slab slot: the callable plus the generation counter that keeps handles
/// honest across reuse.  A slot leaves kLive on cancel (callable destroyed
/// eagerly) and returns to the free list once its key surfaces.
struct Slot {
  SimTime time = 0.0;
  std::uint64_t seq = 0;
  std::uint32_t gen = 1;
  enum State : std::uint8_t { kFree, kLive, kDead } state = kFree;
  EventFn fn;
};

struct EventQueueCore {
  explicit EventQueueCore(SchedulerKind k) : kind(k) {}

  // Branch-on-kind dispatch: both backends are concrete members (the unused
  // one stays empty and costs a few hundred bytes), so every key operation
  // is a direct, inlinable call behind one perfectly-predicted branch.
  void push_key(const Key& k) {
    if (kind == SchedulerKind::kCalendar) {
      calendar.push(k);
    } else {
      heap.push(k);
    }
  }
  Key peek_key() {
    return kind == SchedulerKind::kCalendar ? calendar.peek() : heap.peek();
  }
  Key pop_key() {
    return kind == SchedulerKind::kCalendar ? calendar.pop() : heap.pop();
  }
  std::size_t key_count() const {
    return kind == SchedulerKind::kCalendar ? calendar.size() : heap.size();
  }
  void clear_keys() {
    if (kind == SchedulerKind::kCalendar) {
      calendar.clear();
    } else {
      heap.clear();
    }
  }

  std::uint32_t acquire_slot() {
    if (!free_list.empty()) {
      const std::uint32_t idx = free_list.back();
      free_list.pop_back();
      return idx;
    }
    slots.emplace_back();
    return static_cast<std::uint32_t>(slots.size() - 1);
  }

  /// Retires a slot whose key has left the backend: the generation bump
  /// makes every outstanding handle to it inert before reuse.
  void release_slot(std::uint32_t idx) {
    Slot& s = slots[idx];
    QIP_DCHECK(s.state != Slot::kFree);
    if (s.state == Slot::kDead) --dead;
    s.fn.reset();
    s.state = Slot::kFree;
    ++s.gen;
    free_list.push_back(idx);
  }

  std::uint32_t schedule_slot(SimTime at, EventFn&& fn) {
    QIP_ASSERT_MSG(static_cast<bool>(fn), "scheduling a null event");
    QIP_ASSERT_MSG(std::isfinite(at), "scheduling at non-finite time " << at);
    const std::uint32_t idx = acquire_slot();
    Slot& s = slots[idx];
    s.time = at;
    s.seq = next_seq++;
    s.state = Slot::kLive;
    s.fn = std::move(fn);
    push_key(Key{s.time, s.seq, idx});
    ++live;
    return idx;
  }

  /// Drops tombstoned keys sitting at the backend minimum so peek/pop see a
  /// live event.  Callables were already freed at cancel time; this only
  /// recycles slots.  With no cancellations outstanding it is one branch.
  void skim() {
    while (dead > 0 && slots[peek_key().slot].state != Slot::kLive) {
      release_slot(pop_key().slot);
    }
  }

  SchedulerKind kind;
  HeapBackend heap;
  CalendarBackend calendar;
  std::vector<Slot> slots;
  std::vector<std::uint32_t> free_list;
  std::size_t live = 0;
  std::size_t dead = 0;  ///< tombstones still buried in the backend
  std::uint64_t next_seq = 0;
};

}  // namespace detail

bool EventHandle::pending() const {
  const auto core = core_.lock();
  if (!core) return false;
  const detail::Slot& s = core->slots[slot_];
  return s.gen == gen_ && s.state == detail::Slot::kLive;
}

void EventHandle::cancel() {
  const auto core = core_.lock();
  if (!core) return;
  detail::Slot& s = core->slots[slot_];
  if (s.gen != gen_ || s.state != detail::Slot::kLive) return;
  // Eager release: the callable (and everything it captures) dies now; only
  // the small key stays buried in the backend until it surfaces.
  s.fn.reset();
  s.state = detail::Slot::kDead;
  --core->live;
  ++core->dead;
}

EventQueue::EventQueue(SchedulerKind kind)
    : core_(std::make_shared<detail::EventQueueCore>(kind)) {}

EventQueue::~EventQueue() = default;

SchedulerKind EventQueue::backend() const { return core_->kind; }

EventHandle EventQueue::schedule(SimTime at, EventFn fn) {
  detail::EventQueueCore& core = *core_;
  const std::uint32_t idx = core.schedule_slot(at, std::move(fn));
  return EventHandle(core_, idx, core.slots[idx].gen);
}

void EventQueue::post(SimTime at, EventFn fn) {
  core_->schedule_slot(at, std::move(fn));
}

std::size_t EventQueue::size() const { return core_->key_count(); }

std::size_t EventQueue::live_size() const { return core_->live; }

SimTime EventQueue::next_time() const {
  detail::EventQueueCore& core = *core_;
  QIP_ASSERT_MSG(core.live > 0, "next_time on empty queue");
  core.skim();
  return core.peek_key().time;
}

EventQueue::Fired EventQueue::pop() {
  detail::EventQueueCore& core = *core_;
  QIP_ASSERT_MSG(core.live > 0, "pop on empty queue");
  core.skim();
  const detail::Key key = core.pop_key();
  detail::Slot& s = core.slots[key.slot];
  Fired fired{s.time, std::move(s.fn)};
  --core.live;
  core.release_slot(key.slot);
  return fired;
}

void EventQueue::clear() {
  detail::EventQueueCore& core = *core_;
  // Free every callable now and invalidate outstanding handles via the
  // generation bump — a late cancel() must be a harmless no-op, never a
  // double-decrement of the (reset) live count.
  for (std::uint32_t i = 0; i < core.slots.size(); ++i) {
    if (core.slots[i].state != detail::Slot::kFree) core.release_slot(i);
  }
  core.clear_keys();
  core.live = 0;
  core.dead = 0;
}

}  // namespace qip
