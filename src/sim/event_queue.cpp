#include "sim/event_queue.hpp"

namespace qip {

EventHandle EventQueue::schedule(SimTime at, std::function<void()> fn) {
  QIP_ASSERT(fn != nullptr);
  auto flag = std::make_shared<bool>(false);
  heap_.push(Entry{at, next_seq_++, std::move(fn), flag});
  return EventHandle(std::move(flag));
}

void EventQueue::skim() const {
  while (!heap_.empty() && *heap_.top().cancelled) heap_.pop();
}

bool EventQueue::empty() const {
  skim();
  return heap_.empty();
}

SimTime EventQueue::next_time() const {
  skim();
  QIP_ASSERT_MSG(!heap_.empty(), "next_time on empty queue");
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  skim();
  QIP_ASSERT_MSG(!heap_.empty(), "pop on empty queue");
  // const_cast is safe: the entry is removed immediately after the move and
  // heap ordering does not inspect `fn`.
  auto& top = const_cast<Entry&>(heap_.top());
  Fired fired{top.time, std::move(top.fn)};
  *top.cancelled = true;  // stale handles now report !pending()
  heap_.pop();
  return fired;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
}

}  // namespace qip
