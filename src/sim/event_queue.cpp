#include "sim/event_queue.hpp"

namespace qip {

EventHandle EventQueue::schedule(SimTime at, std::function<void()> fn) {
  QIP_ASSERT(fn != nullptr);
  auto flag = std::make_shared<bool>(false);
  heap_.push(Entry{at, next_seq_++, std::move(fn), flag});
  ++*live_;
  return EventHandle(std::move(flag), live_);
}

void EventQueue::skim() const {
  // Cancelled entries already left the live count when cancel() ran.
  while (!heap_.empty() && *heap_.top().cancelled) heap_.pop();
}

bool EventQueue::empty() const {
  skim();
  return heap_.empty();
}

SimTime EventQueue::next_time() const {
  skim();
  QIP_ASSERT_MSG(!heap_.empty(), "next_time on empty queue");
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  skim();
  QIP_ASSERT_MSG(!heap_.empty(), "pop on empty queue");
  // const_cast is safe: the entry is removed immediately after the move and
  // heap ordering does not inspect `fn`.
  auto& top = const_cast<Entry&>(heap_.top());
  Fired fired{top.time, std::move(top.fn)};
  *top.cancelled = true;  // stale handles now report !pending()
  --*live_;
  heap_.pop();
  return fired;
}

void EventQueue::clear() {
  // Tombstone everything so outstanding handles see !pending() and a late
  // cancel() cannot double-decrement the (reset) live count.
  while (!heap_.empty()) {
    *heap_.top().cancelled = true;
    heap_.pop();
  }
  *live_ = 0;
}

}  // namespace qip
