// Bump-chunk arena and the capture pool for in-flight event state.
//
// Every scheduled event whose capture exceeds the EventFn/ReceiverFn inline
// buffer used to take one operator-new at schedule time and one delete at
// delivery — the dominant allocation source left in the simulator's timed
// region once the inline fast paths landed.  The capture pool removes it:
//
//   * BumpArena hands out raw chunks of memory bump-pointer style.  Nothing
//     is freed individually; the arena releases everything at destruction.
//   * CaptureArena layers size-classed free lists (32B..4KB, powers of two)
//     on top: freeing a capture block pushes it on its class list, the next
//     allocation of that class pops it.  Steady state therefore performs
//     ZERO operator-new calls for event captures — bench/fig_metro pins
//     this with a global allocation counter (docs/SCALE.md).
//
// The pool is thread_local: the parallel harness runs one SimContext per
// worker thread, so thread locality *is* per-SimContext locality, without
// threading an arena pointer through every EventFn constructor.  Blocks
// over 4KB (none in practice — captures are a few pointers) fall back to
// operator new.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace qip {

class BumpArena {
 public:
  static constexpr std::size_t kChunkSize = 64 * 1024;

  /// Bump-allocates `bytes` aligned to max_align_t.  Never freed
  /// individually; memory returns to the OS when the arena dies.
  void* allocate(std::size_t bytes) {
    bytes = (bytes + kAlign - 1) & ~(kAlign - 1);
    if (offset_ + bytes > current_size_) grow(bytes);
    void* p = chunks_.back().get() + offset_;
    offset_ += bytes;
    total_ += bytes;
    return p;
  }

  /// Total bytes handed out (high-water accounting for bench reports).
  std::size_t bytes_allocated() const { return total_; }

 private:
  static constexpr std::size_t kAlign = alignof(std::max_align_t);

  void grow(std::size_t min_bytes) {
    const std::size_t size = min_bytes > kChunkSize ? min_bytes : kChunkSize;
    chunks_.push_back(std::make_unique<unsigned char[]>(size));
    current_size_ = size;
    offset_ = 0;
  }

  std::vector<std::unique_ptr<unsigned char[]>> chunks_;
  std::size_t offset_ = 0;
  std::size_t current_size_ = 0;
  std::size_t total_ = 0;
};

/// Size-classed recycling pool for event/receiver capture blocks.
class CaptureArena {
 public:
  /// The per-thread pool (one sim context per thread in the harness).
  static CaptureArena& instance() {
    thread_local CaptureArena pool;
    return pool;
  }

  void* allocate(std::size_t bytes) {
    const int cls = size_class(bytes);
    if (cls < 0) return ::operator new(bytes);  // oversized: rare, cold
    FreeBlock*& head = free_[static_cast<std::size_t>(cls)];
    if (head != nullptr) {
      FreeBlock* b = head;
      head = b->next;
      ++reused_;
      return b;
    }
    ++fresh_;
    return arena_.allocate(std::size_t{32} << cls);
  }

  void deallocate(void* p, std::size_t bytes) {
    const int cls = size_class(bytes);
    if (cls < 0) {
      ::operator delete(p);
      return;
    }
    auto* b = static_cast<FreeBlock*>(p);
    b->next = free_[static_cast<std::size_t>(cls)];
    free_[static_cast<std::size_t>(cls)] = b;
  }

  /// Pool effectiveness counters for bench reports: blocks served from a
  /// free list vs carved fresh from the arena.
  std::uint64_t reused() const { return reused_; }
  std::uint64_t fresh() const { return fresh_; }
  std::size_t arena_bytes() const { return arena_.bytes_allocated(); }

 private:
  struct FreeBlock {
    FreeBlock* next;
  };
  // Classes: 32, 64, 128, ..., 4096 bytes.
  static constexpr int kClasses = 8;

  static int size_class(std::size_t bytes) {
    std::size_t size = 32;
    for (int c = 0; c < kClasses; ++c, size <<= 1) {
      if (bytes <= size) return c;
    }
    return -1;
  }

  BumpArena arena_;
  FreeBlock* free_[kClasses] = {};
  std::uint64_t reused_ = 0;
  std::uint64_t fresh_ = 0;
};

}  // namespace qip
