// Pending-event set for the discrete-event simulator.
//
// Events at equal timestamps execute in insertion order (a strictly
// increasing sequence number breaks ties), which keeps runs deterministic —
// a property every experiment in the reproduction depends on.
//
// The queue is a pluggable scheduler: entries live in a slab of reusable
// slots (generation-counted, so handles stay O(1) and allocation-free) and
// a backend orders the (time, seq, slot) keys.  Two backends exist:
//
//   * heap     — binary heap, the reference implementation;
//   * calendar — Brown-'88-style calendar queue with auto-resizing buckets,
//                O(1) amortized enqueue/dequeue at 10^6 pending events.
//
// Both produce bit-identical pop order ((time, seq) ascending), verified by
// a differential fuzz test; QIP_SCHED=heap|calendar selects one process-wide
// (calendar is the default).  Cancellation is O(1): the slot is tombstoned,
// its callable destroyed *eagerly* — a cancelled retransmit timer must not
// keep its captures alive while the tombstone is still buried — and the key
// is dropped lazily when it surfaces at the backend's minimum.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_fn.hpp"
#include "util/assert.hpp"

namespace qip {

/// Simulation clock, in seconds.
using SimTime = double;

/// Scheduler backend flavor.  Resolved once per queue at construction.
enum class SchedulerKind { kHeap, kCalendar };

/// Reads QIP_SCHED (unset → calendar).  A malformed value is a hard error
/// (stderr + exit 2), matching the harness's strict env parsing: silently
/// running the wrong backend would invalidate a benchmark without a trace.
SchedulerKind scheduler_kind_from_env();

namespace detail {
struct EventQueueCore;
}  // namespace detail

/// Opaque handle for cancelling a scheduled event.  Default-constructed
/// handles are inert; cancelling twice (or after firing, after clear(), or
/// after the queue itself is gone) is a no-op.  Handles are {slot,
/// generation} pairs into the queue's slab — copying one never allocates.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event is still scheduled (not fired, not cancelled).
  bool pending() const;

  /// Marks the event dead and frees its callable immediately (captures are
  /// released now, not when the tombstone surfaces).  The live-event count
  /// is maintained eagerly, so live_size() stays exact.
  void cancel();

 private:
  friend class EventQueue;
  EventHandle(std::weak_ptr<detail::EventQueueCore> core, std::uint32_t slot,
              std::uint32_t gen)
      : core_(std::move(core)), slot_(slot), gen_(gen) {}
  std::weak_ptr<detail::EventQueueCore> core_;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class EventQueue {
 public:
  /// A queue on the given backend; the default consults QIP_SCHED.
  explicit EventQueue(SchedulerKind kind = scheduler_kind_from_env());
  ~EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  SchedulerKind backend() const;

  /// Schedules `fn` at absolute time `at` (must be finite).
  EventHandle schedule(SimTime at, EventFn fn);

  /// Fire-and-forget schedule: identical ordering (the same sequence counter
  /// advances), but no handle is materialized — skipping the weak-reference
  /// bookkeeping that dominates when the caller discards the handle anyway.
  void post(SimTime at, EventFn fn);

  /// Exact: true iff no live (uncancelled) event remains.
  bool empty() const { return live_size() == 0; }

  /// Upper bound on live events (cancelled entries buried in a backend are
  /// counted until they surface).
  std::size_t size() const;

  /// Exact number of live (scheduled, uncancelled, unfired) events.  The
  /// count is maintained on schedule/cancel/pop, so — unlike size() — it
  /// never includes tombstoned entries still buried in a backend.
  std::size_t live_size() const;

  /// Time of the earliest live event; queue must be non-empty.
  SimTime next_time() const;

  /// Pops and returns the earliest live event.
  struct Fired {
    SimTime time;
    EventFn fn;
  };
  Fired pop();

  /// Drops every pending event, freeing all callables immediately.
  /// Outstanding handles become inert (a late cancel() is a no-op).
  void clear();

 private:
  /// shared_ptr only so handles can hold a weak reference that survives the
  /// queue; one allocation per queue, never per event.
  std::shared_ptr<detail::EventQueueCore> core_;
};

}  // namespace qip
