// Pending-event set for the discrete-event simulator.
//
// Events at equal timestamps execute in insertion order (a strictly
// increasing sequence number breaks ties), which keeps runs deterministic —
// a property every experiment in the reproduction depends on.  Cancellation
// is O(1): entries carry a tombstone flag and are dropped lazily when they
// surface at the top of the heap.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/assert.hpp"

namespace qip {

/// Simulation clock, in seconds.
using SimTime = double;

/// Opaque handle for cancelling a scheduled event.  Default-constructed
/// handles are inert; cancelling twice (or after firing) is a no-op.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event is still scheduled (not fired, not cancelled).
  bool pending() const { return flag_ && !*flag_; }

  /// Marks the event dead; the queue drops it lazily (but the live-event
  /// count is maintained eagerly, so live_size() stays exact).
  void cancel() {
    if (flag_ && !*flag_) {
      *flag_ = true;
      if (live_) --*live_;
    }
  }

 private:
  friend class EventQueue;
  EventHandle(std::shared_ptr<bool> flag, std::shared_ptr<std::size_t> live)
      : flag_(std::move(flag)), live_(std::move(live)) {}
  std::shared_ptr<bool> flag_;
  std::shared_ptr<std::size_t> live_;
};

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `at`.
  EventHandle schedule(SimTime at, std::function<void()> fn);

  /// Exact: true iff no live (uncancelled) event remains.
  bool empty() const;

  /// Upper bound on live events (cancelled entries buried in the heap are
  /// counted until they surface).
  std::size_t size() const { return heap_.size(); }

  /// Exact number of live (scheduled, uncancelled, unfired) events.  The
  /// count is maintained on schedule/cancel/pop, so — unlike size() — it
  /// never includes tombstoned entries still buried in the heap.
  std::size_t live_size() const { return *live_; }

  /// Time of the earliest live event; queue must be non-empty.
  SimTime next_time() const;

  /// Pops and returns the earliest live event.
  struct Fired {
    SimTime time;
    std::function<void()> fn;
  };
  Fired pop();

  void clear();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Drops cancelled entries from the top of the heap.  If every remaining
  /// entry is cancelled this empties the heap, so empty() is exact.
  void skim() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  /// Shared with every handle so cancellation can decrement it even while
  /// the tombstoned entry is still buried in the heap.
  std::shared_ptr<std::size_t> live_ = std::make_shared<std::size_t>(0);
};

}  // namespace qip
