#include "sim/simulator.hpp"

#include <algorithm>

#include "sim/sim_context.hpp"

namespace qip {

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  QIP_ASSERT_MSG(fired.time >= now_, "event time regressed");
  now_ = fired.time;
  ++executed_;
  // Sampled scheduling depth: one counter event per 128 executed events is
  // enough to see backlog build-up in a trace without drowning it.
  if ((executed_ & 127u) == 0) {
    SimContext& c = ctx();
    if (c.tracing_on()) {
      c.recorder().counter(now_, "event_queue_depth", "sim",
                           static_cast<double>(queue_.size()));
    }
  }
  fired.fn();
  if (!probes_.empty()) run_probes();
  return true;
}

std::uint64_t Simulator::run(SimTime horizon) {
  std::uint64_t count = 0;
  stopping_ = false;
  while (!queue_.empty() && !stopping_) {
    if (queue_.next_time() > horizon) break;
    step();
    ++count;
  }
  // Even when no event ran at the horizon itself, the clock advances to it so
  // callers can interleave run() with direct state inspection at fixed times.
  if (!stopping_ && horizon != std::numeric_limits<SimTime>::infinity() &&
      now_ < horizon) {
    now_ = horizon;
  }
  return count;
}

std::uint64_t Simulator::add_probe(SimTime period, std::function<void()> fn) {
  QIP_ASSERT(period > 0.0);
  QIP_ASSERT(fn != nullptr);
  const std::uint64_t token = next_probe_token_++;
  probes_.push_back(Probe{token, period, now_ + period, std::move(fn)});
  return token;
}

void Simulator::remove_probe(std::uint64_t token) {
  probes_.erase(std::remove_if(probes_.begin(), probes_.end(),
                               [token](const Probe& p) {
                                 return p.token == token;
                               }),
                probes_.end());
}

void Simulator::run_probes() {
  // Index loop: a probe that (illegally) registers another probe must not
  // invalidate iteration; removal mid-fire is tolerated by the size check.
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    if (now_ < probes_[i].next) continue;
    probes_[i].fn();
    if (i < probes_.size()) probes_[i].next = now_ + probes_[i].period;
  }
}

}  // namespace qip
