#include "sim/simulator.hpp"

namespace qip {

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  QIP_ASSERT_MSG(fired.time >= now_, "event time regressed");
  now_ = fired.time;
  ++executed_;
  fired.fn();
  return true;
}

std::uint64_t Simulator::run(SimTime horizon) {
  std::uint64_t count = 0;
  stopping_ = false;
  while (!queue_.empty() && !stopping_) {
    if (queue_.next_time() > horizon) break;
    step();
    ++count;
  }
  // Even when no event ran at the horizon itself, the clock advances to it so
  // callers can interleave run() with direct state inspection at fixed times.
  if (!stopping_ && horizon != std::numeric_limits<SimTime>::infinity() &&
      now_ < horizon) {
    now_ = horizon;
  }
  return count;
}

}  // namespace qip
