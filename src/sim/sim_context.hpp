// Per-simulation context: the bundle of cross-cutting services a run uses.
//
// Historically the logger, trace recorder and metrics registry were process
// globals ("single-threaded by design"), which capped the whole bench suite
// at one core.  A SimContext makes that state per-run: every Simulator (and
// everything reached through it — Transport, ReliableChannel, protocol
// engines, World) resolves its Logger / TraceRecorder / MetricsRegistry /
// RNG root / FaultInjector handle through the context instead of a global.
//
// Three flavors:
//
//   * process_context() — the compatibility shim.  Aliases the process-wide
//     logger/recorder/registry (which still honor QIP_TRACE_FILE etc.), so
//     tools, examples and tests that predate contexts behave exactly as
//     before.  Code that never mentions SimContext lands here.
//   * SimContext(seed) — a fresh, fully isolated context: own logger (sink
//     defaults to stderr), own disabled recorder, own empty registry.  Two
//     Worlds on two fresh contexts can interleave arbitrarily — even on
//     different threads — without observing each other.
//   * SimContext(Replica, parent, seed) — one parallel cell's context, as
//     created by the ParallelRunner: inherits the parent's log level and
//     trace configuration, buffers log lines, and is merged back into the
//     parent via absorb() in deterministic (x, round) order.
//
// See docs/PARALLELISM.md for the ownership diagram and the determinism
// contract.
#pragma once

#include <cstdint>
#include <memory>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace_recorder.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace qip {

class FaultInjector;
class AdversaryController;

class SimContext {
 public:
  /// Tag selecting the replica constructor.
  struct Replica {};

  /// Fresh, fully isolated context (root seed 0).
  SimContext() : SimContext(0) {}
  explicit SimContext(std::uint64_t root_seed);

  /// Replica of `parent` for one parallel cell: same log level and trace
  /// configuration (capacity + enabled), fresh buffers.  Log lines buffer
  /// in-context until the parent absorb()s them.
  SimContext(Replica, const SimContext& parent, std::uint64_t root_seed);

  SimContext(const SimContext&) = delete;
  SimContext& operator=(const SimContext&) = delete;

  Logger& logger() const { return *logger_; }
  obs::TraceRecorder& recorder() const { return *recorder_; }
  obs::MetricsRegistry& metrics() const { return *metrics_; }

  /// The one branch an instrumentation site pays when tracing is off.
  bool tracing_on() const { return recorder_->enabled(); }

  /// Context-level RNG root.  Worlds seed their own Rng; this one seeds
  /// context-scoped decisions and derive_seed().
  Rng& rng() { return rng_; }
  std::uint64_t root_seed() const { return root_seed_; }

  /// Pure function of (root_seed, stream): the seed for a child context or
  /// cell, independent of call order — the enabler for parallel replication.
  std::uint64_t derive_seed(std::uint64_t stream) const;

  /// Active fault injector, if any (owned elsewhere — usually by a World).
  FaultInjector* faults() const { return faults_; }
  void set_faults(FaultInjector* f) { faults_ = f; }

  /// Active adversary controller, if any (owned elsewhere — usually by a
  /// World).  Protocol engines resolve it here, the same way transports
  /// resolve the fault injector: per-run state travels with the context, so
  /// parallel cells with different adversary plans never observe each other,
  /// and the detector/attack timers they derive stay inside their own run.
  AdversaryController* adversary() const { return adversary_; }
  void set_adversary(AdversaryController* a) { adversary_ = a; }

  /// Whether this context aliases the process-wide logger/recorder/registry.
  bool is_process_context() const { return !owned_logger_; }

  /// Folds a finished cell context into this one: trace events append (span
  /// ids remapped), metrics merge, buffered log lines flush to this logger's
  /// sink and warning counts transfer.  Call in deterministic order — the
  /// ParallelRunner absorbs cells in ascending (x, round) order, making the
  /// merged state identical to a sequential run.
  void absorb(SimContext& cell);

 private:
  friend SimContext& process_context();
  struct ProcessTag {};
  explicit SimContext(ProcessTag);

  std::unique_ptr<Logger> owned_logger_;
  std::unique_ptr<obs::TraceRecorder> owned_recorder_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  Logger* logger_;
  obs::TraceRecorder* recorder_;
  obs::MetricsRegistry* metrics_;
  std::ostringstream log_buffer_;  ///< replica log sink until absorb()
  Rng rng_;
  std::uint64_t root_seed_;
  FaultInjector* faults_ = nullptr;
  AdversaryController* adversary_ = nullptr;
};

/// The process-default context (compatibility shim): wraps the process-wide
/// logger, recorder and registry.  Everything that never asks for a context
/// — tools, examples, directly constructed Simulators — runs against this.
SimContext& process_context();

}  // namespace qip
