// Small-buffer move-only callable for event callbacks.
//
// Every scheduled event used to carry a std::function whose capture state
// usually exceeded libstdc++'s tiny inline buffer, costing one heap
// allocation per event on the hottest path in the simulator.  EventFn keeps
// a 64-byte aligned inline buffer — enough for every timer lambda in the
// protocol engines (a `this` pointer plus a couple of ids) — and only falls
// back to the per-thread capture arena (sim/arena.hpp) for oversized or
// throwing-move captures, so steady-state scheduling allocates nothing.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/arena.hpp"

namespace qip {

class EventFn {
 public:
  /// Inline capture budget.  Chosen to hold a std::function (for callers
  /// that still build one) or `this` + several ids with room to spare.
  static constexpr std::size_t kInlineSize = 64;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  EventFn() = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor) — drop-in for
                    // std::function at every schedule() call site.
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = inline_ops<D>();
    } else {
      void* p = CaptureArena::instance().allocate(sizeof(D));
      heap_ = ::new (p) D(std::forward<F>(f));
      ops_ = heap_ops<D>();
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(target()); }

  /// Destroys the captured state immediately.  Cancellation calls this so a
  /// dead event cannot keep its captures alive while the tombstone is still
  /// buried in a scheduler backend.
  void reset() {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(target());
      ops_ = nullptr;
      heap_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// nullptr for trivially-destructible captures: reset() skips the call.
    void (*destroy)(void*);
    /// Move-constructs the callable into `dst` (inline buffer or heap slot
    /// hand-off) and destroys the source representation.  nullptr for
    /// trivially-copyable inline captures — the dominant case (`this` plus a
    /// few ids) — where relocation is a raw buffer copy done inline by
    /// move_from(), with no indirect call.
    void (*relocate)(EventFn& dst, EventFn& src);
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<D>;
  }

  void* target() {
    return ops_ != nullptr && heap_ != nullptr ? heap_
                                               : static_cast<void*>(buf_);
  }

  void move_from(EventFn& other) noexcept {
    if (other.ops_ != nullptr) {
      if (other.ops_->relocate != nullptr) {
        other.ops_->relocate(*this, other);
      } else {
        // Trivially-copyable inline capture: relocation is a plain copy of
        // the buffer (copying the full 64 bytes unconditionally beats an
        // indirect call that would copy sizeof(D) of them).
        __builtin_memcpy(buf_, other.buf_, kInlineSize);
        ops_ = other.ops_;
        other.ops_ = nullptr;
      }
    }
  }

  template <typename D>
  static void invoke_as(void* p) {
    (*static_cast<D*>(p))();
  }

  template <typename D>
  static void destroy_inline(void* p) {
    static_cast<D*>(p)->~D();
  }

  template <typename D>
  static void destroy_heap(void* p) {
    static_cast<D*>(p)->~D();
    CaptureArena::instance().deallocate(p, sizeof(D));
  }

  template <typename D>
  static void relocate_inline(EventFn& dst, EventFn& src) {
    D* s = static_cast<D*>(static_cast<void*>(src.buf_));
    ::new (static_cast<void*>(dst.buf_)) D(std::move(*s));
    s->~D();
    dst.ops_ = src.ops_;
    src.ops_ = nullptr;
  }

  static void relocate_heap(EventFn& dst, EventFn& src) {
    dst.heap_ = src.heap_;
    dst.ops_ = src.ops_;
    src.heap_ = nullptr;
    src.ops_ = nullptr;
  }

  template <typename D>
  static constexpr bool trivial_inline() {
    return std::is_trivially_copyable_v<D> &&
           std::is_trivially_destructible_v<D>;
  }

  template <typename D>
  static const Ops* inline_ops() {
    if constexpr (trivial_inline<D>()) {
      static constexpr Ops kOps = {&invoke_as<D>, nullptr, nullptr};
      return &kOps;
    } else {
      static constexpr Ops kOps = {&invoke_as<D>, &destroy_inline<D>,
                                   &relocate_inline<D>};
      return &kOps;
    }
  }

  template <typename D>
  static const Ops* heap_ops() {
    static constexpr Ops kOps = {&invoke_as<D>, &destroy_heap<D>,
                                 &relocate_heap};
    return &kOps;
  }

  alignas(kInlineAlign) unsigned char buf_[kInlineSize] = {};
  void* heap_ = nullptr;
  const Ops* ops_ = nullptr;
};

}  // namespace qip
