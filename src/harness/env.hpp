// Strict environment-variable parsing for the harness knobs.
//
// QIP_ROUNDS / QIP_JOBS / QIP_SEED silently falling back on a typo
// ("QIP_ROUNDS=1O") is worse than an error: the run completes with the
// wrong replication count and nobody notices.  These helpers accept an
// unset variable (returning the fallback) but reject a malformed one
// with a message on stderr and exit code 2.
#pragma once

#include <cstdint>

namespace qip {

/// Reads `name` as a strictly positive decimal integer.  Unset → fallback;
/// malformed, zero or out of range → stderr diagnostic + exit(2).
std::uint32_t env_positive_u32(const char* name, std::uint32_t fallback);

/// Reads `name` as a non-negative decimal integer (zero allowed — retry
/// counts legitimately say "never retry").  Unset → fallback; malformed or
/// out of range → exit(2).
std::uint32_t env_u32(const char* name, std::uint32_t fallback);

/// Reads `name` as an unsigned 64-bit integer (decimal, or hex/octal with
/// the usual 0x/0 prefixes).  Unset → fallback; malformed → exit(2).
std::uint64_t env_u64(const char* name, std::uint64_t fallback);

/// Parses a command-line value with the same strictness and diagnostics
/// as env_positive_u32 (`what` names the flag in the error message).
std::uint32_t parse_positive_u32(const char* what, const char* text);

/// Parses a command-line value with the same strictness as env_u32.
std::uint32_t parse_u32(const char* what, const char* text);

/// Parses a command-line value with the same strictness as env_u64.
std::uint64_t parse_u64(const char* what, const char* text);

/// Reads `name` as a switch: on/1/true enable, off/0/false disable
/// (case-sensitive, matching the documented spellings).  Unset → fallback;
/// anything else → stderr diagnostic + exit(2).  Used for QIP_TOPO_INCR:
/// a typo'd escape hatch silently running the wrong code path is exactly
/// the failure mode strict parsing exists to prevent.
bool env_bool(const char* name, bool fallback);

/// Parses a command-line/env switch value with env_bool's strictness.
bool parse_bool(const char* what, const char* text);

}  // namespace qip
