// Simulation world: one bundle owning the substrate a protocol runs on.
//
// The paper's setup (§VI-A): 1 km × 1 km area, 50–200 nodes arriving
// sequentially, random-waypoint movement at 20 m/s after configuration,
// graceful or abrupt departures.  A World wires simulator, topology,
// transport metering and mobility together with one deterministic RNG.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fault/adversary.hpp"
#include "fault/fault_injector.hpp"
#include "geom/rect.hpp"
#include "harness/auditor.hpp"
#include "mobility/waypoint.hpp"
#include "net/metrics.hpp"
#include "net/topology.hpp"
#include "net/transport.hpp"
#include "sim/sim_context.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace qip {

struct WorldParams {
  double area_side = 1000.0;        ///< metres (1 km × 1 km)
  double transmission_range = 150.0;///< metres
  double speed = 20.0;              ///< m/s random-waypoint speed
  SimTime mobility_tick = 1.0;      ///< movement timestep, seconds
  SimTime per_hop_delay = 0.002;    ///< transport per-hop latency, seconds
};

class World {
 public:
  /// A world on the process-default context (the compatibility path: tools,
  /// examples and most tests).
  World(const WorldParams& params, std::uint64_t seed);
  /// A world bound to `ctx`: every trace event, metric and log line this
  /// world produces lands in the context instead of the process globals.
  /// The ParallelRunner builds each cell's world this way.  `ctx` must
  /// outlive the world.
  World(const WorldParams& params, std::uint64_t seed, SimContext& ctx);
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  const WorldParams& params() const { return params_; }
  SimContext& ctx() const { return *ctx_; }
  Rng& rng() { return rng_; }
  Simulator& sim() { return sim_; }
  Topology& topology() { return topology_; }
  MessageStats& stats() { return stats_; }
  Transport& transport() { return transport_; }
  MobilityManager& mobility() { return mobility_; }

  /// Installs a fault plan on the transport (replacing any previous one)
  /// and returns the injector for stats inspection.  A null plan leaves the
  /// run byte-identical to one that never called this.
  FaultInjector& enable_faults(const FaultPlan& plan);
  void disable_faults();
  FaultInjector* faults() { return faults_.get(); }
  const FaultInjector* faults() const { return faults_.get(); }

  /// Installs an adversary plan (replacing any previous one), publishing the
  /// controller through this world's SimContext where protocol engines find
  /// it.  A null plan leaves the run byte-identical to one that never called
  /// this; attacks engage only while their sim-time windows are open.
  AdversaryController& enable_adversary(const AdversaryPlan& plan);
  void disable_adversary();
  AdversaryController* adversary() { return adversary_.get(); }
  const AdversaryController* adversary() const { return adversary_.get(); }

  /// Attaches a UniquenessAuditor to `proto`, owned by the world — for
  /// scenarios that drive a protocol without a Driver (which installs and
  /// owns its own auditor).  The auditor is a read-only simulator probe: it
  /// never schedules events or perturbs determinism, it only throws on a
  /// violated invariant.
  UniquenessAuditor& audit(const AutoconfProtocol& proto,
                           SimTime period = 0.5, SimTime grace = 30.0);

  /// Places a new node uniformly at random; returns its position.
  Point place_random(NodeId id);

  /// Advances simulated time by `dt`, executing due events.
  void run_for(SimTime dt) { sim_.run(sim_.now() + dt); }

  /// Drains every pending event (bounded by `max_events` as a livelock
  /// guard).
  void settle(std::uint64_t max_events = 2'000'000);

 private:
  WorldParams params_;
  SimContext* ctx_;  ///< before sim_: the simulator is built against it
  Rng rng_;
  Simulator sim_;
  Topology topology_;
  MessageStats stats_;
  Transport transport_;
  MobilityManager mobility_;
  std::unique_ptr<FaultInjector> faults_;
  std::unique_ptr<AdversaryController> adversary_;
  std::vector<std::unique_ptr<UniquenessAuditor>> auditors_;
};

}  // namespace qip
