#include "harness/auditor.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>

#include "core/qip_engine.hpp"
#include "util/assert.hpp"

namespace qip {

UniquenessAuditor::UniquenessAuditor(Simulator& sim, const Topology& topology,
                                     const AutoconfProtocol& proto,
                                     SimTime period, SimTime grace)
    : sim_(sim), topology_(topology), proto_(proto), grace_(grace) {
  // Experiment override: QIP_AUDIT_GRACE=<seconds> retunes the healing
  // horizon without a rebuild (pairs with QIP_AUDIT_TRACE for measuring
  // conflict-window lengths).
  if (const char* env = std::getenv("QIP_AUDIT_GRACE")) {
    char* end = nullptr;
    const double parsed = std::strtod(env, &end);
    // An unparseable value must not silently become grace 0 (the strictest
    // possible setting); keep the configured default instead.
    if (end != env && *end == '\0' && parsed >= 0.0) grace_ = parsed;
  }
  probe_token_ = sim_.add_probe(period, [this] { check_now(); });
}

UniquenessAuditor::~UniquenessAuditor() { sim_.remove_probe(probe_token_); }

void UniquenessAuditor::check_now() {
  ++checks_;

  // Uniqueness: within one connected component and one audit domain, every
  // configured address has exactly one holder.  Conflicts across components
  // (independent bootstraps) or domains (healed partitions pending merge,
  // §V-C) are never violations; conflicts within one domain become fatal
  // only after the grace window (see the header).  Detection/tolerance
  // schemes opt out entirely (audit_uniqueness()); the leak check below
  // still runs for them.
  if (proto_.audit_uniqueness()) {
    const SimTime now = sim_.now();
    std::set<std::pair<std::uint64_t, IpAddress>> observed;
    // The components partition is epoch-cached: probes between movement
    // steps reuse the same partition instead of re-running a full BFS sweep.
    for (const auto& component : topology_.components_view()) {
      std::map<std::pair<std::uint64_t, IpAddress>, std::vector<NodeId>>
          holders;
      for (NodeId id : component) {
        const auto addr = proto_.address_of(id);
        if (!addr) continue;
        holders[{proto_.audit_domain(id), *addr}].push_back(id);
      }
      for (auto& [key, hs] : holders) {
        if (hs.size() < 2) continue;
        std::sort(hs.begin(), hs.end());
        auto [pit, new_conflict] = pending_.try_emplace(key);
        PendingConflict& pc = pit->second;
        // The clock continues across observation gaps and holder-set growth
        // (see the header); it restarts only for a genuinely new conflict —
        // first sighting, or a re-collision that shares fewer than two
        // holders with the previous one (the old conflict resolved).
        std::vector<NodeId> carried;
        std::set_intersection(pc.holders.begin(), pc.holders.end(),
                              hs.begin(), hs.end(),
                              std::back_inserter(carried));
        if (new_conflict || carried.size() < 2) pc.since = now;
        pc.holders = hs;
        pc.last_seen = now;
        observed.insert(key);
        if (now - pc.since < grace_) continue;
        std::ostringstream diff;
        diff << "duplicate address at t=" << now << ": " << key.second
             << " held by nodes " << hs[0] << " and " << hs[1];
        if (hs.size() > 2) diff << " (and " << hs.size() - 2 << " more)";
        diff << " in the same connected component since t=" << pc.since
             << " (grace " << grace_ << "s exceeded; domain " << key.first
             << ", protocol " << proto_.name() << ")";
        // Observe-only escape hatch for debugging conflict timelines.
        if (std::getenv("QIP_AUDIT_TRACE")) {
          std::fprintf(stderr, "[audit] %s\n", diff.str().c_str());
          continue;
        }
        QIP_ASSERT_MSG(false, diff.str());
      }
    }
    // Unobserved conflicts are carried, clock intact, until they have been
    // quiet for a full grace period — only then are they considered
    // resolved rather than flickering.
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (!observed.count(it->first) && now - it->second.last_seen > grace_)
        it = pending_.erase(it);
      else
        ++it;
    }
  }

  // Leak check (QIP): the engine must not retain addressed state for a node
  // that is gone from the field — such a ghost would keep its address
  // allocated forever.
  if (const auto* qip = dynamic_cast<const QipEngine*>(&proto_)) {
    for (const auto& [id, addr] : qip->configured_addresses()) {
      if (topology_.has_node(id)) continue;
      std::ostringstream diff;
      diff << "leaked address at t=" << sim_.now() << ": node " << id
           << " left the field but still holds " << addr
           << " in the engine's state";
      QIP_ASSERT_MSG(false, diff.str());
    }
  }
}

}  // namespace qip
