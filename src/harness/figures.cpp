#include "harness/figures.hpp"

#include <memory>
#include <set>
#include <sstream>

#include "baselines/buddy.hpp"
#include "baselines/ctree.hpp"
#include "baselines/manetconf.hpp"
#include "core/qip_engine.hpp"
#include "harness/driver.hpp"
#include "harness/env.hpp"
#include "harness/parallel.hpp"
#include "harness/world.hpp"
#include "sim/sim_context.hpp"
#include "util/stats.hpp"

namespace qip {

namespace {

constexpr std::uint64_t kPoolSize = 1024;

std::unique_ptr<QipEngine> make_qip(World& w, bool periodic_updates = true) {
  QipParams p;
  p.pool_size = kPoolSize;
  p.periodic_location_update = periodic_updates;
  auto proto = std::make_unique<QipEngine>(w.transport(), w.rng(), p);
  proto->start_hello();
  return proto;
}

std::unique_ptr<QipEngine> make_qip_params(World& w, const QipParams& base) {
  QipParams p = base;
  p.pool_size = kPoolSize;
  auto proto = std::make_unique<QipEngine>(w.transport(), w.rng(), p);
  proto->start_hello();
  return proto;
}

std::unique_ptr<ManetConf> make_manetconf(World& w) {
  ManetConfParams p;
  p.pool_size = kPoolSize;
  return std::make_unique<ManetConf>(w.transport(), w.rng(), p);
}

std::unique_ptr<BuddyProtocol> make_buddy(World& w) {
  BuddyParams p;
  p.pool_size = kPoolSize;
  auto proto = std::make_unique<BuddyProtocol>(w.transport(), w.rng(), p);
  proto->start_sync();
  return proto;
}

std::unique_ptr<CTreeProtocol> make_ctree(World& w) {
  CTreeParams p;
  p.pool_size = kPoolSize;
  auto proto = std::make_unique<CTreeProtocol>(w.transport(), w.rng(), p);
  proto->start_updates();
  return proto;
}

World make_world(double tr, double speed, std::uint64_t seed,
                 SimContext& ctx) {
  WorldParams wp;
  wp.transmission_range = tr;
  wp.speed = speed;
  return World(wp, seed, ctx);
}

World make_world(double tr, double speed, std::uint64_t seed) {
  return make_world(tr, speed, seed, process_context());
}

/// One cell's contribution: a variable-length sample list per series.
/// Variable length because some figures add conditionally (fig12's ratio
/// guard, fig13's resamples, fig14's killed-head guard).
using CellSamples = std::vector<std::vector<double>>;

/// Runs one cell per (x index, round) via the parallel runner and folds the
/// samples into per-series, per-x RunningStats in ascending (x, round)
/// order — the exact accumulation order of the historical nested loops, so
/// the figure tables are byte-identical for every jobs value.
template <typename CellFn>
std::vector<std::vector<RunningStats>> run_figure(const ExperimentOptions& opt,
                                                  std::size_t nx,
                                                  std::size_t nseries,
                                                  CellFn&& cell) {
  std::vector<std::vector<RunningStats>> stats(
      nseries, std::vector<RunningStats>(nx));
  const std::size_t rounds = opt.rounds;
  run_cells<CellSamples>(
      process_context(), opt.jobs, nx * rounds,
      [&](std::size_t idx, SimContext& ctx) {
        return cell(idx / rounds, static_cast<std::uint32_t>(idx % rounds),
                    ctx);
      },
      [&](std::size_t idx, CellSamples&& samples) {
        const std::size_t xi = idx / rounds;
        for (std::size_t s = 0; s < nseries; ++s) {
          for (double v : samples[s]) stats[s][xi].add(v);
        }
      });
  return stats;
}

std::vector<double> means(const std::vector<RunningStats>& stats) {
  std::vector<double> out;
  out.reserve(stats.size());
  for (const RunningStats& s : stats) out.push_back(s.mean());
  return out;
}

/// Mixed graceful/abrupt departure of `count` random members (§VI-A).
template <typename Proto>
void depart_mixed(World& w, Driver& d, Proto& proto, std::uint32_t count,
                  double abrupt_ratio) {
  (void)proto;
  for (std::uint32_t i = 0; i < count && !d.members().empty(); ++i) {
    const NodeId victim = d.members()[w.rng().index(d.members().size())];
    if (w.rng().chance(abrupt_ratio)) {
      d.depart_abrupt(victim);
    } else {
      d.depart_graceful(victim);
    }
    w.run_for(0.3);
  }
}

}  // namespace

std::uint32_t rounds_from_env(std::uint32_t fallback) {
  return env_positive_u32("QIP_ROUNDS", fallback);
}

// ---------------------------------------------------------------------------
// Fig. 5 / 6 / 7 — configuration latency
// ---------------------------------------------------------------------------

namespace {

/// Joins `nn` nodes and returns the mean configuration latency in hops.
template <typename MakeProto>
double measure_latency(double tr, std::uint32_t nn, std::uint64_t seed,
                       SimContext& ctx, MakeProto&& make_proto) {
  World w = make_world(tr, 20.0, seed, ctx);
  auto proto = make_proto(w);
  Driver d(w, *proto);
  d.join(nn);
  w.run_for(2.0);
  return d.mean_config_latency();
}

}  // namespace

FigureData fig5_config_latency(const ExperimentOptions& opt) {
  FigureData fig;
  fig.title = "Fig 5: configuration latency vs network size (tr=150m)";
  fig.x_name = "nn";
  fig.x = {50, 100, 150, 200};
  const auto stats = run_figure(
      opt, fig.x.size(), 2,
      [&](std::size_t xi, std::uint32_t r, SimContext& ctx) {
        const auto nn = static_cast<std::uint32_t>(fig.x[xi]);
        const std::uint64_t seed = derive_cell_seed(opt.seed + 5, xi, r);
        CellSamples out(2);
        out[0].push_back(measure_latency(
            150.0, nn, seed, ctx, [](World& w) { return make_qip(w); }));
        out[1].push_back(measure_latency(
            150.0, nn, seed, ctx, [](World& w) { return make_manetconf(w); }));
        return out;
      });
  fig.series = {Series{"QIP", means(stats[0])},
                Series{"MANETconf", means(stats[1])}};
  return fig;
}

FigureData fig6_latency_vs_range(const ExperimentOptions& opt) {
  FigureData fig;
  fig.title = "Fig 6: configuration latency vs transmission range (nn=100)";
  fig.x_name = "tr";
  fig.x = {100, 150, 200, 250};
  const auto stats = run_figure(
      opt, fig.x.size(), 2,
      [&](std::size_t xi, std::uint32_t r, SimContext& ctx) {
        const std::uint64_t seed = derive_cell_seed(opt.seed + 6, xi, r);
        CellSamples out(2);
        out[0].push_back(measure_latency(
            fig.x[xi], 100, seed, ctx, [](World& w) { return make_qip(w); }));
        out[1].push_back(
            measure_latency(fig.x[xi], 100, seed, ctx,
                            [](World& w) { return make_manetconf(w); }));
        return out;
      });
  fig.series = {Series{"QIP", means(stats[0])},
                Series{"MANETconf", means(stats[1])}};
  return fig;
}

FigureData fig7_latency_grid(const ExperimentOptions& opt) {
  FigureData fig;
  fig.title = "Fig 7: QIP configuration latency vs nn for several tr";
  fig.x_name = "nn";
  fig.x = {50, 100, 150, 200};
  const std::vector<double> ranges = {100, 150, 200, 250};
  const auto stats = run_figure(
      opt, fig.x.size(), ranges.size(),
      [&](std::size_t xi, std::uint32_t r, SimContext& ctx) {
        const auto nn = static_cast<std::uint32_t>(fig.x[xi]);
        CellSamples out(ranges.size());
        for (std::size_t ti = 0; ti < ranges.size(); ++ti) {
          const double tr = ranges[ti];
          const std::uint64_t seed = derive_cell_seed(
              opt.seed + 7 + static_cast<std::uint64_t>(tr), xi, r);
          out[ti].push_back(measure_latency(
              tr, nn, seed, ctx, [](World& w) { return make_qip(w); }));
        }
        return out;
      });
  for (std::size_t ti = 0; ti < ranges.size(); ++ti) {
    fig.series.push_back(
        Series{"tr=" + format_double(ranges[ti], 0), means(stats[ti])});
  }
  return fig;
}

// ---------------------------------------------------------------------------
// Fig. 8 / 9 — configuration and departure message overhead vs buddy [2]
// ---------------------------------------------------------------------------

namespace {

struct OverheadResult {
  double config_per_node = 0.0;
  double departure_per_node = 0.0;
};

template <typename MakeProto>
OverheadResult measure_overhead(std::uint32_t nn, std::uint64_t seed,
                                SimContext& ctx, MakeProto&& make_proto) {
  World w = make_world(150.0, 20.0, seed, ctx);
  auto proto = make_proto(w);
  Driver d(w, *proto);

  PhaseMeter meter(w.stats());
  d.join(nn);
  w.run_for(2.0);
  OverheadResult out;
  // Join-phase overhead: everything the protocol sent while configuring nn
  // nodes, including its periodic machinery, divided by nn.
  out.config_per_node =
      static_cast<double>(meter.protocol_hops()) / static_cast<double>(nn);

  // Departure phase: 30% of the network leaves gracefully.
  meter.reset();
  const auto leavers = static_cast<std::uint32_t>(nn * 3 / 10);
  for (std::uint32_t i = 0; i < leavers && !d.members().empty(); ++i) {
    const NodeId victim = d.members()[w.rng().index(d.members().size())];
    d.depart_graceful(victim);
    w.run_for(0.2);
  }
  out.departure_per_node = static_cast<double>(meter.protocol_hops()) /
                           static_cast<double>(leavers);
  return out;
}

}  // namespace

FigureData fig8_config_overhead(const ExperimentOptions& opt) {
  FigureData fig;
  fig.title = "Fig 8: configuration overhead vs network size (hops/node)";
  fig.x_name = "nn";
  fig.x = {50, 100, 150, 200};
  const auto stats = run_figure(
      opt, fig.x.size(), 2,
      [&](std::size_t xi, std::uint32_t r, SimContext& ctx) {
        const auto nn = static_cast<std::uint32_t>(fig.x[xi]);
        const std::uint64_t seed = derive_cell_seed(opt.seed + 8, xi, r);
        CellSamples out(2);
        out[0].push_back(
            measure_overhead(nn, seed, ctx,
                             [](World& w) { return make_qip(w); })
                .config_per_node);
        out[1].push_back(
            measure_overhead(nn, seed, ctx,
                             [](World& w) { return make_buddy(w); })
                .config_per_node);
        return out;
      });
  fig.series = {Series{"QIP", means(stats[0])},
                Series{"Buddy[2]", means(stats[1])}};
  return fig;
}

FigureData fig9_departure_overhead(const ExperimentOptions& opt) {
  FigureData fig;
  fig.title = "Fig 9: departure overhead vs network size (hops/departure)";
  fig.x_name = "nn";
  fig.x = {50, 100, 150, 200};
  const auto stats = run_figure(
      opt, fig.x.size(), 2,
      [&](std::size_t xi, std::uint32_t r, SimContext& ctx) {
        const auto nn = static_cast<std::uint32_t>(fig.x[xi]);
        const std::uint64_t seed = derive_cell_seed(opt.seed + 9, xi, r);
        CellSamples out(2);
        out[0].push_back(
            measure_overhead(nn, seed, ctx,
                             [](World& w) { return make_qip(w); })
                .departure_per_node);
        out[1].push_back(
            measure_overhead(nn, seed, ctx,
                             [](World& w) { return make_buddy(w); })
                .departure_per_node);
        return out;
      });
  fig.series = {Series{"QIP", means(stats[0])},
                Series{"Buddy[2]", means(stats[1])}};
  return fig;
}

// ---------------------------------------------------------------------------
// Fig. 10 / 11 — maintenance & movement overhead
// ---------------------------------------------------------------------------

namespace {

struct MaintenanceResult {
  double per_node = 0.0;       ///< movement+departure+maintenance hops / node
  double movement_total = 0.0; ///< movement hops over the observation window
};

template <typename MakeProto>
MaintenanceResult measure_maintenance(std::uint32_t nn, double speed,
                                      std::uint64_t seed, SimContext& ctx,
                                      MakeProto&& make_proto) {
  World w = make_world(150.0, speed, seed, ctx);
  auto proto = make_proto(w);
  Driver d(w, *proto);
  d.join(nn);
  w.run_for(2.0);

  PhaseMeter meter(w.stats());
  // Observation window: nodes roam for 30 simulated seconds, then 20% of
  // the network departs (graceful/abrupt mixed per §VI-A).
  w.run_for(30.0);
  MaintenanceResult out;
  out.movement_total = static_cast<double>(meter.hops(Traffic::kMovement));
  const auto leavers = nn / 5;
  for (std::uint32_t i = 0; i < leavers && !d.members().empty(); ++i) {
    const NodeId victim = d.members()[w.rng().index(d.members().size())];
    if (w.rng().chance(0.2)) {
      d.depart_abrupt(victim);
    } else {
      d.depart_graceful(victim);
    }
    w.run_for(0.2);
  }
  w.run_for(2.0);
  const std::uint64_t total = meter.hops(Traffic::kMovement) +
                              meter.hops(Traffic::kDeparture) +
                              meter.hops(Traffic::kMaintenance);
  out.per_node = static_cast<double>(total) / static_cast<double>(nn);
  return out;
}

}  // namespace

FigureData fig10_maintenance(const ExperimentOptions& opt) {
  FigureData fig;
  fig.title =
      "Fig 10: maintenance overhead (movement+departure) vs nn, 20 m/s";
  fig.x_name = "nn";
  fig.x = {50, 100, 150, 200};
  const auto stats = run_figure(
      opt, fig.x.size(), 3,
      [&](std::size_t xi, std::uint32_t r, SimContext& ctx) {
        const auto nn = static_cast<std::uint32_t>(fig.x[xi]);
        const std::uint64_t seed = derive_cell_seed(opt.seed + 10, xi, r);
        CellSamples out(3);
        out[0].push_back(
            measure_maintenance(nn, 20.0, seed, ctx,
                                [](World& w) { return make_qip(w, true); })
                .per_node);
        out[1].push_back(
            measure_maintenance(nn, 20.0, seed, ctx,
                                [](World& w) { return make_qip(w, false); })
                .per_node);
        out[2].push_back(
            measure_maintenance(nn, 20.0, seed, ctx,
                                [](World& w) { return make_ctree(w); })
                .per_node);
        return out;
      });
  fig.series = {Series{"QIP periodic", means(stats[0])},
                Series{"QIP upon-leave", means(stats[1])},
                Series{"C-tree[3]", means(stats[2])}};
  return fig;
}

FigureData fig11_speed(const ExperimentOptions& opt) {
  FigureData fig;
  fig.title = "Fig 11: movement overhead vs node speed (nn=150)";
  fig.x_name = "speed";
  fig.x = {5, 10, 20, 30, 40};
  const auto stats = run_figure(
      opt, fig.x.size(), 2,
      [&](std::size_t xi, std::uint32_t r, SimContext& ctx) {
        const std::uint64_t seed = derive_cell_seed(opt.seed + 11, xi, r);
        CellSamples out(2);
        out[0].push_back(
            measure_maintenance(150, fig.x[xi], seed, ctx,
                                [](World& w) { return make_qip(w, true); })
                .movement_total);
        out[1].push_back(
            measure_maintenance(150, fig.x[xi], seed, ctx,
                                [](World& w) { return make_qip(w, false); })
                .movement_total);
        return out;
      });
  fig.series = {Series{"QIP periodic", means(stats[0])},
                Series{"QIP upon-leave", means(stats[1])}};
  return fig;
}

// ---------------------------------------------------------------------------
// Fig. 12 — visible IP space (QuorumSpace extension)
// ---------------------------------------------------------------------------

FigureData fig12_quorum_space(const ExperimentOptions& opt) {
  FigureData fig;
  fig.title =
      "Fig 12: visible IP space per head, QIP/C-tree ratio (QuorumSpace "
      "extension)";
  fig.x_name = "nn";
  fig.x = {50, 100, 150, 200};
  const std::vector<double> ranges = {100, 150, 200};
  const auto stats = run_figure(
      opt, fig.x.size(), ranges.size(),
      [&](std::size_t xi, std::uint32_t r, SimContext& ctx) {
        const auto nn = static_cast<std::uint32_t>(fig.x[xi]);
        CellSamples out(ranges.size());
        for (std::size_t ti = 0; ti < ranges.size(); ++ti) {
          const double tr = ranges[ti];
          const std::uint64_t seed = derive_cell_seed(
              opt.seed + 12 + static_cast<std::uint64_t>(tr), xi, r);
          // Static layouts: the visible-space ratio is a structural property
          // of the cluster/QDSet graph, best measured without mobility noise.
          DriverOptions dopt;
          dopt.mobility = false;
          double qip_space = 0.0, ctree_space = 0.0;
          {
            World w = make_world(tr, 0.0, seed, ctx);
            auto proto = make_qip(w);
            Driver d(w, *proto, dopt);
            d.join(nn);
            w.run_for(5.0);
            qip_space = proto->average_visible_space();
          }
          {
            World w = make_world(tr, 0.0, seed, ctx);
            auto proto = make_ctree(w);
            Driver d(w, *proto, dopt);
            d.join(nn);
            w.run_for(5.0);
            ctree_space = proto->average_visible_space();
          }
          if (ctree_space > 0.0) out[ti].push_back(qip_space / ctree_space);
        }
        return out;
      });
  for (std::size_t ti = 0; ti < ranges.size(); ++ti) {
    fig.series.push_back(
        Series{"tr=" + format_double(ranges[ti], 0), means(stats[ti])});
  }
  return fig;
}

// ---------------------------------------------------------------------------
// Fig. 13 — information loss under mass abrupt departure
// ---------------------------------------------------------------------------

FigureData fig13_info_loss(const ExperimentOptions& opt) {
  FigureData fig;
  fig.title = "Fig 13: IP state information loss vs abrupt-leave ratio "
              "(nn=150, %)";
  fig.x_name = "abrupt%";
  fig.x = {5, 10, 20, 30, 40, 50};
  constexpr std::uint32_t nn = 150;
  const auto stats = run_figure(
      opt, fig.x.size(), 2,
      [&](std::size_t xi, std::uint32_t r, SimContext& ctx) {
        const double ratio = fig.x[xi] / 100.0;
        const std::uint64_t seed = derive_cell_seed(opt.seed + 13, xi, r);
        CellSamples out(2);
        // The loss metric is structural, so one built network supports many
        // independent kill-set samples — resampling tightens the estimate at
        // no simulation cost.
        constexpr int kResamples = 25;
        // --- QIP: a dead head's state survives while at least half of its
        // QDSet survives (at least one quorum remains, §VI-D.2).
        {
          World w = make_world(150.0, 20.0, seed, ctx);
          auto proto = make_qip(w);
          Driver d(w, *proto);
          d.join(nn);
          w.run_for(5.0);
          for (int s = 0; s < kResamples; ++s) {
            std::set<NodeId> dead;
            for (NodeId id : d.members()) {
              if (w.rng().chance(ratio)) dead.insert(id);
            }
            std::uint64_t lost = 0, total = 0;
            for (NodeId id : d.members()) {
              if (!dead.count(id) || !proto->knows(id)) continue;
              const auto& st = proto->state_of(id);
              if (st.role != Role::kClusterHead) continue;
              const std::uint64_t space = st.owned_universe.size();
              total += space;
              std::uint32_t surviving = 0;
              for (NodeId m : st.qdset) {
                if (!dead.count(m)) ++surviving;
              }
              if (surviving * 2 < st.qdset.size() || st.qdset.empty()) {
                lost += space;
              }
            }
            if (total > 0) {
              out[0].push_back(100.0 * static_cast<double>(lost) /
                               static_cast<double>(total));
            }
          }
        }
        // --- C-tree: a dead coordinator's allocations survive only in the
        // root's last snapshot; if the root died too, everything is lost.
        {
          World w = make_world(150.0, 20.0, seed, ctx);
          auto proto = make_ctree(w);
          Driver d(w, *proto);
          d.join(nn);
          w.run_for(5.0);
          proto->update_tick();  // root holds a snapshot of this moment
          d.join(10);            // ...then allocation state drifts
          w.run_for(1.0);
          for (int s = 0; s < kResamples; ++s) {
            std::set<NodeId> dead;
            for (NodeId id : d.members()) {
              if (w.rng().chance(ratio)) dead.insert(id);
            }
            // Loss% = allocations of dead coordinators without a surviving
            // copy over all allocations those coordinators tracked.
            std::uint64_t at_risk = 0;
            for (NodeId id : dead) at_risk += proto->allocations_of(id);
            const std::uint64_t lost = proto->info_loss_if_dead(dead);
            if (at_risk > 0) {
              out[1].push_back(100.0 * static_cast<double>(lost) /
                               static_cast<double>(at_risk));
            }
          }
        }
        return out;
      });
  fig.series = {Series{"QIP", means(stats[0])},
                Series{"C-tree[3]", means(stats[1])}};
  return fig;
}

// ---------------------------------------------------------------------------
// Fig. 14 — reclamation overhead
// ---------------------------------------------------------------------------

FigureData fig14_reclamation(const ExperimentOptions& opt) {
  FigureData fig;
  fig.title = "Fig 14: address reclamation overhead vs network size "
              "(hops per reclaimed head)";
  fig.x_name = "nn";
  fig.x = {50, 80, 110, 140, 170, 200};
  const auto stats = run_figure(
      opt, fig.x.size(), 3,
      [&](std::size_t xi, std::uint32_t r, SimContext& ctx) {
        const auto nn = static_cast<std::uint32_t>(fig.x[xi]);
        const std::uint64_t seed = derive_cell_seed(opt.seed + 14, xi, r);
        CellSamples out(3);
        // --- QIP: kill two cluster heads abruptly, let quorum adjustment
        // detect them and reclaim locally.  Measured twice: the paper's
        // claims-only reclamation, and this library's safer variant that
        // probes recorded holders before freeing.
        for (bool probe : {false, true}) {
          World w = make_world(150.0, 20.0, seed, ctx);
          QipParams qp;
          qp.reclaim_probe = probe;
          auto proto = make_qip_params(w, qp);
          Driver d(w, *proto);
          d.join(nn);
          w.run_for(5.0);
          std::vector<NodeId> heads = proto->clusters().heads();
          std::uint32_t killed = 0;
          for (NodeId h : heads) {
            if (killed >= 2) break;
            d.depart_abrupt(h);
            ++killed;
          }
          PhaseMeter meter(w.stats());
          w.run_for(15.0);  // Td + Tr + settle + write rounds
          if (killed > 0) {
            out[probe ? 1 : 0].push_back(
                static_cast<double>(meter.hops(Traffic::kReclamation)) /
                killed);
          }
        }
        // --- C-tree: kill two coordinators; the root detects them at the
        // next periodic update and floods the whole network.
        {
          World w = make_world(150.0, 20.0, seed, ctx);
          auto proto = make_ctree(w);
          Driver d(w, *proto);
          d.join(nn);
          w.run_for(5.0);
          proto->update_tick();  // root learns the coordinator set
          std::uint32_t killed = 0;
          for (NodeId id : std::vector<NodeId>(d.members())) {
            if (killed >= 2) break;
            if (proto->is_coordinator(id) && id != proto->root()) {
              d.depart_abrupt(id);
              ++killed;
            }
          }
          PhaseMeter meter(w.stats());
          w.run_for(12.0);  // two update periods: detection + reclamation
          const std::uint64_t recl = meter.hops(Traffic::kReclamation);
          if (killed > 0) {
            out[2].push_back(static_cast<double>(recl) / killed);
          }
        }
        return out;
      });
  fig.series = {Series{"QIP", means(stats[0])},
                Series{"QIP+probe", means(stats[1])},
                Series{"C-tree[3]", means(stats[2])}};
  return fig;
}

// ---------------------------------------------------------------------------
// Fig. 4 — example layout
// ---------------------------------------------------------------------------

LayoutStats fig4_layout(std::uint64_t seed, std::uint32_t nn, double tr) {
  World w = make_world(tr, 0.0, seed);
  auto proto = make_qip(w);
  DriverOptions dopt;
  dopt.mobility = false;
  Driver d(w, *proto, dopt);
  d.join(nn);
  w.run_for(5.0);

  LayoutStats out;
  out.nodes = w.topology().node_count();
  out.heads = proto->clusters().head_count();
  out.mean_qdset = proto->average_qdset_size();
  double members = 0;
  for (NodeId h : proto->clusters().heads())
    members += static_cast<double>(proto->clusters().members_of(h).size());
  out.mean_cluster_size = out.heads ? members / out.heads : 0.0;

  // 40x20 ASCII map: '#' cluster head, 'o' common node, '.' empty.
  constexpr int kW = 40, kH = 20;
  std::vector<std::string> grid(kH, std::string(kW, '.'));
  for (NodeId id : w.topology().all_nodes()) {
    const Point p = w.topology().position(id);
    const int cx = std::min(kW - 1, static_cast<int>(p.x / 1000.0 * kW));
    const int cy = std::min(kH - 1, static_cast<int>(p.y / 1000.0 * kH));
    const bool head = proto->clusters().is_head(id);
    char& cell = grid[cy][cx];
    if (head) {
      cell = '#';
    } else if (cell != '#') {
      cell = 'o';
    }
  }
  std::ostringstream os;
  for (const auto& row : grid) os << row << '\n';
  out.ascii_map = os.str();
  return out;
}

}  // namespace qip
