// Always-on address-uniqueness auditor.
//
// The paper's core claim is that quorum voting keeps addresses unique under
// failure; the auditor turns that claim into a machine-checked invariant on
// every run.  Registered as a simulator *probe* (not an event — it occupies
// no queue slot, so settle loops terminate and event interleaving is
// untouched), it periodically snapshots all configured addresses and throws
// an InvariantViolation with a full diff when two nodes in the same
// connected component and audit domain hold the same address, or a protocol
// keeps ghost state for a node that left the field.  The Driver installs
// one unconditionally, so every test, example and bench audits for free.
//
// Duplicates are fatal only once they outlive `grace`: the paper resolves
// conflicts *at contact* (§V-C — a reclamation can re-issue an address a
// temporarily unreachable node still holds, and the heal machinery then
// settles the claim by record freshness), so a conflict window bounded by
// the healing horizon is protocol behavior, not a bug.  A conflict that
// persists past the grace window means the resolution machinery failed.
// Healing is contact-driven, so the window scales with how long mobility
// takes to bring a stranded holder back into contact: stress seeds self-heal
// under ~7 simulated seconds, while the figure scenarios (larger fields,
// paper mobility) show windows up to ~23 s.  The default grace of 30 leaves
// margin without masking genuinely stuck duplicates — long runs still abort
// on any conflict that outlives it.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "addr/ip_address.hpp"
#include "net/protocol.hpp"
#include "sim/simulator.hpp"

namespace qip {

class UniquenessAuditor {
 public:
  UniquenessAuditor(Simulator& sim, const Topology& topology,
                    const AutoconfProtocol& proto, SimTime period = 0.5,
                    SimTime grace = 30.0);
  ~UniquenessAuditor();
  UniquenessAuditor(const UniquenessAuditor&) = delete;
  UniquenessAuditor& operator=(const UniquenessAuditor&) = delete;

  /// Runs one audit immediately; throws InvariantViolation with a diff of
  /// the offending addresses/holders on any violation.
  void check_now();

  /// Audits performed so far (each one covered the whole network).
  std::uint64_t checks() const { return checks_; }

  /// Conflicts currently inside their grace window (0 on a healthy net).
  /// Includes conflicts temporarily unobservable (a holder drifted out of
  /// the component) that have not yet been quiet for a full grace period.
  std::size_t conflicts_pending() const { return pending_.size(); }

 private:
  /// One live duplicate-address conflict.  The clock (`since`) survives
  /// observation gaps: a holder that departs and re-enters inside the grace
  /// window must not reset the window, or a flickering node could mask a
  /// genuine duplicate indefinitely.  It also survives the holder *set*
  /// evolving (a third claimant piling onto an existing duplicate must not
  /// restart it): the clock restarts only when fewer than two current
  /// holders were part of the previous observation — i.e. the old conflict
  /// resolved and a genuinely new collision arose — or after a full grace
  /// period with the conflict unobserved.
  struct PendingConflict {
    SimTime since = 0.0;      ///< first observation of this conflict
    SimTime last_seen = 0.0;  ///< latest audit tick it was observed
    std::vector<NodeId> holders;  ///< sorted holders at last observation
  };

  Simulator& sim_;
  const Topology& topology_;
  const AutoconfProtocol& proto_;
  SimTime grace_;
  std::uint64_t probe_token_ = 0;
  std::uint64_t checks_ = 0;
  /// Live conflicts by (audit domain, address).
  std::map<std::pair<std::uint64_t, IpAddress>, PendingConflict> pending_;
};

}  // namespace qip
