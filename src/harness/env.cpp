#include "harness/env.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace qip {

namespace {

[[noreturn]] void die(const char* what, const char* text, const char* want) {
  std::fprintf(stderr, "qip: invalid %s value '%s' (expected %s)\n", what,
               text, want);
  std::exit(2);
}

}  // namespace

std::uint32_t parse_positive_u32(const char* what, const char* text) {
  if (text == nullptr || *text == '\0') {
    die(what, text ? text : "", "a positive integer");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0' ||
      std::strchr(text, '-') != nullptr) {
    die(what, text, "a positive integer");
  }
  if (v == 0 || v > 0xffffffffULL) {
    die(what, text, "a positive integer up to 2^32-1");
  }
  return static_cast<std::uint32_t>(v);
}

std::uint32_t parse_u32(const char* what, const char* text) {
  if (text == nullptr || *text == '\0') {
    die(what, text ? text : "", "a non-negative integer");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0' ||
      std::strchr(text, '-') != nullptr) {
    die(what, text, "a non-negative integer");
  }
  if (v > 0xffffffffULL) {
    die(what, text, "a non-negative integer up to 2^32-1");
  }
  return static_cast<std::uint32_t>(v);
}

std::uint64_t parse_u64(const char* what, const char* text) {
  if (text == nullptr || *text == '\0') {
    die(what, text ? text : "", "an unsigned integer");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 0);
  if (errno != 0 || end == text || *end != '\0' ||
      std::strchr(text, '-') != nullptr) {
    die(what, text, "an unsigned integer (decimal or 0x-hex)");
  }
  return static_cast<std::uint64_t>(v);
}

bool parse_bool(const char* what, const char* text) {
  if (text != nullptr) {
    if (std::strcmp(text, "on") == 0 || std::strcmp(text, "1") == 0 ||
        std::strcmp(text, "true") == 0) {
      return true;
    }
    if (std::strcmp(text, "off") == 0 || std::strcmp(text, "0") == 0 ||
        std::strcmp(text, "false") == 0) {
      return false;
    }
  }
  die(what, text ? text : "", "on/off, 1/0 or true/false");
}

bool env_bool(const char* name, bool fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  return parse_bool(name, env);
}

std::uint32_t env_positive_u32(const char* name, std::uint32_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  return parse_positive_u32(name, env);
}

std::uint32_t env_u32(const char* name, std::uint32_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  return parse_u32(name, env);
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) return fallback;
  return parse_u64(name, env);
}

}  // namespace qip
