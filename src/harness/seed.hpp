// Replayable seeds for scenario binaries.
//
// Every fault scenario is deterministic given (world seed, fault seed), so
// reproducing a failure is a matter of re-running with the same numbers.
// resolve_seed() gives every example and tool one override order —
// `--seed N` on the command line beats the QIP_SEED environment variable
// beats the built-in default — and announces the effective value on startup
// so any run's banner is enough to replay it.
#pragma once

#include <cstdint>

namespace qip {

/// Resolves the effective seed.  Scans argv (when given) for `--seed N` or
/// `--seed=N`, then the QIP_SEED environment variable, then `fallback`.
/// When `announce` is true, prints "effective seed: N" to stdout.
std::uint64_t resolve_seed(std::uint64_t fallback, int argc = 0,
                           const char* const* argv = nullptr,
                           bool announce = true);

}  // namespace qip
