#include "harness/seed.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace qip {

std::uint64_t resolve_seed(std::uint64_t fallback, int argc,
                           const char* const* argv, bool announce) {
  std::uint64_t seed = fallback;
  const char* source = "default";

  if (const char* env = std::getenv("QIP_SEED"); env && *env) {
    seed = std::strtoull(env, nullptr, 0);
    source = "QIP_SEED";
  }

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[i + 1], nullptr, 0);
      source = "--seed";
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      seed = std::strtoull(arg + 7, nullptr, 0);
      source = "--seed";
    }
  }

  if (announce) {
    std::printf("effective seed: %llu (%s)\n",
                static_cast<unsigned long long>(seed), source);
  }
  return seed;
}

}  // namespace qip
