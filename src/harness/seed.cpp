#include "harness/seed.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/env.hpp"

namespace qip {

std::uint64_t resolve_seed(std::uint64_t fallback, int argc,
                           const char* const* argv, bool announce) {
  std::uint64_t seed = fallback;
  const char* source = "default";

  if (std::getenv("QIP_SEED") != nullptr) {
    seed = env_u64("QIP_SEED", fallback);
    source = "QIP_SEED";
  }

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--seed") == 0 && i + 1 < argc) {
      seed = parse_u64("--seed", argv[i + 1]);
      source = "--seed";
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      seed = parse_u64("--seed", arg + 7);
      source = "--seed";
    }
  }

  if (announce) {
    std::printf("effective seed: %llu (%s)\n",
                static_cast<unsigned long long>(seed), source);
  }
  return seed;
}

}  // namespace qip
