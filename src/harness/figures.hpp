// One function per table/figure of the paper's evaluation (§VI).
//
// Every function runs the full scenario the figure describes — sequential
// arrivals, random-waypoint movement, graceful/abrupt departures — for each
// x value and a configurable number of rounds, and returns the series the
// paper plots.  Bench binaries print these; EXPERIMENTS.md records them.
//
// The paper averages 1000 rounds; the default here is smaller so a full
// regeneration stays in laptop territory.  Set rounds (or the QIP_ROUNDS
// environment variable read by the benches) higher to tighten the CIs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/table.hpp"

namespace qip {

struct FigureData {
  std::string title;
  std::string x_name;
  std::vector<double> x;
  std::vector<Series> series;

  std::string render(int precision = 2) const {
    return render_figure(title, x_name, x, series, precision);
  }
};

struct ExperimentOptions {
  std::uint32_t rounds = 3;
  std::uint64_t seed = 0x1cdc5'2007ULL;  // ICDCS'07
  /// Worker threads for replication (see docs/PARALLELISM.md).  Every cell
  /// runs on its own SimContext and results merge in deterministic order,
  /// so the output is byte-identical for every value — including 1.
  std::uint32_t jobs = 1;
};

/// Fig. 5 — configuration latency (hops) vs network size, tr = 150 m:
/// QIP vs MANETconf.
FigureData fig5_config_latency(const ExperimentOptions& opt);

/// Fig. 6 — configuration latency vs transmission range, nn = 100:
/// QIP vs MANETconf.
FigureData fig6_latency_vs_range(const ExperimentOptions& opt);

/// Fig. 7 — QIP configuration latency across (tr × nn).
FigureData fig7_latency_grid(const ExperimentOptions& opt);

/// Fig. 8 — configuration message overhead (hops per configured node) vs
/// network size: QIP vs the buddy protocol [2].
FigureData fig8_config_overhead(const ExperimentOptions& opt);

/// Fig. 9 — departure message overhead (hops per departure) vs network
/// size: QIP vs the buddy protocol [2].
FigureData fig9_departure_overhead(const ExperimentOptions& opt);

/// Fig. 10 — maintenance overhead for movement + departure vs network size,
/// 20 m/s: QIP periodic update, QIP upon-leave update, C-tree [3].
FigureData fig10_maintenance(const ExperimentOptions& opt);

/// Fig. 11 — movement message overhead vs node speed, nn = 150:
/// QIP periodic update vs upon-leave update.
FigureData fig11_speed(const ExperimentOptions& opt);

/// Fig. 12 — visible IP space per head (QuorumSpace extension) vs network
/// size and transmission range: QIP vs C-tree, reported as the ratio.
FigureData fig12_quorum_space(const ExperimentOptions& opt);

/// Fig. 13 — percentage of IP state information lost vs abrupt-leave ratio:
/// QIP (replicated QDSets) vs C-tree (root snapshots).
FigureData fig13_info_loss(const ExperimentOptions& opt);

/// Fig. 14 — address reclamation overhead vs network size:
/// QIP (local, quorum-based) vs C-tree (root-driven global flood).
FigureData fig14_reclamation(const ExperimentOptions& opt);

/// Fig. 4 — a randomly generated layout (returns cluster statistics; the
/// bench renders an ASCII map).
struct LayoutStats {
  std::size_t nodes = 0;
  std::size_t heads = 0;
  double mean_cluster_size = 0.0;
  double mean_qdset = 0.0;
  std::string ascii_map;
};
LayoutStats fig4_layout(std::uint64_t seed, std::uint32_t nn = 100,
                        double tr = 150.0);

/// Reads QIP_ROUNDS from the environment (benches honor it), defaulting to
/// `fallback`.  Malformed values are rejected with exit(2) — a typo must
/// not silently demote a long run to the default replication count.
std::uint32_t rounds_from_env(std::uint32_t fallback);

}  // namespace qip
