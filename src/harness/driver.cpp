#include "harness/driver.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace qip {

Driver::Driver(World& world, AutoconfProtocol& proto, DriverOptions options)
    : world_(world), proto_(proto), options_(options) {
  if (options_.mobility) {
    world_.mobility().set_on_tick([this] { proto_.on_mobility_tick(); });
    world_.mobility().start();
  }
  if (options_.audit) {
    auditor_ = std::make_unique<UniquenessAuditor>(
        world_.sim(), world_.topology(), proto_, options_.audit_period,
        options_.audit_grace);
  }
}

NodeId Driver::join_at(const Point& position) {
  const NodeId id = next_id_++;
  world_.topology().add_node(id, position);
  proto_.node_entered(id);
  world_.run_for(options_.arrival_interval);
  if (options_.mobility && proto_.configured(id)) {
    world_.mobility().add(id, world_.params().speed);
  }
  members_.push_back(id);
  return id;
}

NodeId Driver::join_one() {
  const NodeId id = next_id_++;
  if (options_.connected_arrivals && world_.topology().node_count() > 0) {
    // Rejection-sample until the newcomer hears at least one existing node;
    // give up after a bounded number of tries (very sparse networks).
    Topology& topo = world_.topology();
    for (int tries = 0; tries < 200; ++tries) {
      const Point p = topo.area().sample(world_.rng());
      if (topo.covered(p)) {
        topo.add_node(id, p);
        break;
      }
      if (tries == 199) topo.add_node(id, p);
    }
  } else {
    world_.place_random(id);
  }
  proto_.node_entered(id);
  world_.run_for(options_.arrival_interval);
  if (options_.mobility && proto_.configured(id)) {
    // §VI-A: nodes move "to a random destination ... after its configuration
    // with the network".
    world_.mobility().add(id, world_.params().speed);
  }
  members_.push_back(id);
  return id;
}

std::vector<NodeId> Driver::join(std::uint32_t n) {
  std::vector<NodeId> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(join_one());
  return out;
}

void Driver::remove_from_members(NodeId id) {
  auto it = std::find(members_.begin(), members_.end(), id);
  QIP_ASSERT_MSG(it != members_.end(), "node " << id << " not a member");
  members_.erase(it);
}

void Driver::depart_graceful(NodeId id) {
  remove_from_members(id);
  proto_.node_departing(id);
  world_.run_for(options_.departure_settle);
  if (world_.mobility().manages(id)) world_.mobility().remove(id);
  if (world_.topology().has_node(id)) world_.topology().remove_node(id);
  proto_.node_left(id);
}

void Driver::depart_abrupt(NodeId id) {
  remove_from_members(id);
  if (world_.mobility().manages(id)) world_.mobility().remove(id);
  if (world_.topology().has_node(id)) world_.topology().remove_node(id);
  proto_.node_vanished(id);
}

double Driver::configured_fraction() const {
  if (next_id_ == 0) return 0.0;
  std::uint32_t ok = 0;
  for (NodeId id = 0; id < next_id_; ++id) {
    if (proto_.configured(id)) ++ok;
  }
  return static_cast<double>(ok) / static_cast<double>(next_id_);
}

double Driver::mean_config_latency() const {
  double sum = 0.0;
  std::uint32_t n = 0;
  for (NodeId id = 0; id < next_id_; ++id) {
    const ConfigRecord* rec = proto_.config_record(id);
    if (rec && rec->success) {
      sum += static_cast<double>(rec->latency_hops);
      ++n;
    }
  }
  return n ? sum / n : 0.0;
}

}  // namespace qip
