// Scenario driver: the lifecycle choreography shared by tests, examples and
// every figure bench.
//
// Implements the harness side of AutoconfProtocol's lifecycle contract —
// sequential arrivals, post-configuration mobility, graceful departures with
// a settle window, and abrupt departures (silent removal).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "harness/auditor.hpp"
#include "harness/world.hpp"
#include "net/protocol.hpp"

namespace qip {

struct DriverOptions {
  /// Simulated seconds between sequential arrivals (§VI-A).
  SimTime arrival_interval = 0.5;
  /// Time the network runs after a graceful-departure announcement before
  /// the node physically disappears.
  SimTime departure_settle = 0.2;
  /// Nodes start moving once configured.
  bool mobility = true;
  /// Place arrivals within radio range of the existing network (§VI-A grows
  /// one network; without this bias, early sparse arrivals bootstrap many
  /// independent networks that must merge later).  Partition experiments
  /// turn it off.
  bool connected_arrivals = true;
  /// Always-on uniqueness auditing (see harness/auditor.hpp): the Driver
  /// attaches a UniquenessAuditor to the protocol so every scenario doubles
  /// as a fault-tolerance check.  On only for the truly paranoid to turn
  /// off; it reads state without perturbing determinism.  The Driver owns
  /// its auditor, so replacing a Driver (and the protocol it drives)
  /// retires the old probe with it.
  bool audit = true;
  SimTime audit_period = 0.5;
  /// How long a same-domain duplicate may persist before the auditor
  /// aborts (§V-C resolves conflicts at contact, so the window scales with
  /// mobility contact times; see harness/auditor.hpp).
  SimTime audit_grace = 30.0;
};

class Driver {
 public:
  Driver(World& world, AutoconfProtocol& proto, DriverOptions options = {});

  /// Adds one node at a random position and starts its configuration; runs
  /// the world for the arrival interval.  Returns the node id.
  NodeId join_one();

  /// Deterministic variant: joins a node at an explicit position (tests).
  NodeId join_at(const Point& position);

  /// Sequentially joins `n` nodes.  Returns their ids.
  std::vector<NodeId> join(std::uint32_t n);

  /// Graceful departure: protocol farewell, settle window, then removal.
  void depart_graceful(NodeId id);

  /// Abrupt departure: the node vanishes without any message.
  void depart_abrupt(NodeId id);

  /// Ids of nodes currently in the network, sorted.
  const std::vector<NodeId>& members() const { return members_; }

  /// Fraction of joined nodes that ended configured.
  double configured_fraction() const;

  /// Mean configuration latency (hops) over successfully configured nodes.
  double mean_config_latency() const;

  /// Number of joins attempted so far.
  std::uint32_t joined_count() const { return next_id_; }

 private:
  void remove_from_members(NodeId id);

  World& world_;
  AutoconfProtocol& proto_;
  DriverOptions options_;
  NodeId next_id_ = 0;
  std::vector<NodeId> members_;
  std::unique_ptr<UniquenessAuditor> auditor_;
};

/// Snapshot-diff helper: meters the hops a phase of a scenario produced.
class PhaseMeter {
 public:
  explicit PhaseMeter(const MessageStats& stats) : stats_(&stats) { reset(); }

  void reset() { start_ = *stats_; }

  /// Hops added in `t` since the last reset.
  std::uint64_t hops(Traffic t) const {
    return stats_->of(t).hops - start_.of(t).hops;
  }
  std::uint64_t messages(Traffic t) const {
    return stats_->of(t).messages - start_.of(t).messages;
  }
  /// All protocol hops (hello excluded) since the last reset.
  std::uint64_t protocol_hops() const {
    return stats_->protocol_hops() - start_.protocol_hops();
  }

 private:
  const MessageStats* stats_;
  MessageStats start_;
};

}  // namespace qip
