#include "harness/parallel.hpp"

#include <cinttypes>
#include <cstdio>

#include "harness/env.hpp"
#include "util/rng.hpp"

namespace qip {

namespace {

std::string cell_failure_message(std::size_t index, std::uint64_t seed,
                                 const std::string& what) {
  char head[64];
  std::snprintf(head, sizeof(head), "cell %zu (seed 0x%016" PRIx64 "): ",
                index, seed);
  return head + what;
}

}  // namespace

CellFailure::CellFailure(std::size_t index, std::uint64_t seed,
                         const std::string& what)
    : std::runtime_error(cell_failure_message(index, seed, what)),
      index_(index),
      seed_(seed) {}

std::uint32_t jobs_from_env(std::uint32_t fallback) {
  return env_positive_u32("QIP_JOBS", fallback);
}

std::uint64_t derive_cell_seed(std::uint64_t base, std::uint64_t xi,
                               std::uint64_t round) {
  SplitMix64 sm(base ^ (0x9e3779b97f4a7c15ULL * (xi + 1)) ^
                (0xd1342543de82ef95ULL * (round + 1)));
  return sm.next();
}

}  // namespace qip
