// Deterministic parallel replication: fan independent simulation cells
// across a thread pool without changing a single output byte.
//
// A "cell" is one (x value, round) replication of a scenario — a fully
// independent simulation with its own seed.  run_cells() gives every cell a
// replica SimContext of the parent (own logger buffer, own trace recorder,
// own metrics registry), runs cells on up to `jobs` worker threads, and
// absorbs the finished contexts back into the parent strictly in ascending
// cell order.  Because cells never share mutable state and the merge order
// is fixed, the observable output — figure tables, trace files, metrics,
// log lines — is byte-identical for every jobs value, including jobs=1,
// which takes a sequential path with the same replica-context semantics.
//
// Memory is bounded by backpressure: a worker does not start a cell that is
// more than a small window ahead of the merge frontier, so at most O(jobs)
// replica trace rings are alive at once.
//
// See docs/PARALLELISM.md for the ownership diagram and the determinism
// contract.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sim/sim_context.hpp"

namespace qip {

/// What run_cells() rethrows when a cell throws: the original message,
/// prefixed with the cell's identity.  A bare "quorum timed out" from a
/// 4000-cell campaign is undebuggable; "cell 2317 (seed 0x8f3a...)" can be
/// re-run in isolation.  index()/seed() expose the identity structurally for
/// harnesses (the campaign runner journals them).
class CellFailure : public std::runtime_error {
 public:
  CellFailure(std::size_t index, std::uint64_t seed, const std::string& what);

  std::size_t index() const { return index_; }
  std::uint64_t seed() const { return seed_; }

 private:
  std::size_t index_;
  std::uint64_t seed_;
};

/// Reads QIP_JOBS (strict parse: malformed values exit(2)), defaulting to
/// `fallback`.  The value is a worker-thread count; 1 means sequential.
std::uint32_t jobs_from_env(std::uint32_t fallback = 1);

/// Seed for (experiment seed, x index, round) — a pure function of its
/// inputs, independent of execution order.  This is the historical formula
/// the figure suite always used; parallel replication relies on exactly
/// this property.
std::uint64_t derive_cell_seed(std::uint64_t base, std::uint64_t xi,
                               std::uint64_t round);

/// Runs `total` independent cells and merges their results deterministically.
///
///   cell(idx, ctx)  — runs on a worker thread (inline when jobs <= 1) with
///                     a replica SimContext; returns a T.  Must not touch
///                     process-global observability state.
///   merge(idx, t)   — runs on the calling thread, strictly in ascending
///                     idx order, after the cell's context was absorb()ed
///                     into `parent`.
///
/// If a cell throws, the lowest-index failure is rethrown on the calling
/// thread as a CellFailure carrying (cell index, seed); cells at higher
/// indices are discarded, and cells still queued behind a recorded failure
/// are cancelled instead of run to completion — their results could never be
/// observed, so running them only burns time between the fault and the
/// report.
template <typename T, typename CellFn, typename MergeFn>
void run_cells(SimContext& parent, std::uint32_t jobs, std::size_t total,
               CellFn&& cell, MergeFn&& merge) {
  if (total == 0) return;

  if (jobs <= 1 || total == 1) {
    for (std::size_t idx = 0; idx < total; ++idx) {
      const std::uint64_t seed = parent.derive_seed(idx);
      SimContext ctx(SimContext::Replica{}, parent, seed);
      T result = [&]() -> T {
        try {
          return cell(idx, ctx);
        } catch (const std::exception& e) {
          throw CellFailure(idx, seed, e.what());
        } catch (...) {
          throw CellFailure(idx, seed, "unknown exception");
        }
      }();
      parent.absorb(ctx);
      merge(idx, std::move(result));
    }
    return;
  }

  struct Slot {
    std::unique_ptr<SimContext> ctx;
    std::optional<T> result;
    std::exception_ptr error;
    bool done = false;
  };

  const auto workers = static_cast<std::uint32_t>(
      std::min<std::size_t>(jobs, total));
  const std::size_t window = 2 * static_cast<std::size_t>(workers) + 2;

  std::vector<Slot> slots(total);
  std::mutex mu;
  std::condition_variable cv_done;   // worker -> merger: a slot finished
  std::condition_variable cv_space;  // merger -> workers: frontier advanced
  std::size_t merged = 0;            // guarded by mu
  std::atomic<std::size_t> next{0};
  // Lowest failed index so far.  A cell queued behind a failure can never be
  // observed (results past the lowest failure are discarded), so workers
  // skip it instead of running it; the winning exception can only move down,
  // never up, so nothing that still matters is skipped.
  constexpr std::size_t kNoFailure = ~static_cast<std::size_t>(0);
  std::atomic<std::size_t> failed_at{kNoFailure};

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::uint32_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t idx = next.fetch_add(1, std::memory_order_relaxed);
        if (idx >= total) return;
        bool cancelled = idx > failed_at.load(std::memory_order_acquire);
        if (!cancelled) {
          // Backpressure: stay within `window` of the merge frontier so
          // unmerged replica contexts (and their trace rings) stay O(jobs).
          std::unique_lock<std::mutex> lock(mu);
          cv_space.wait(lock, [&] { return merged + window > idx; });
          cancelled = idx > failed_at.load(std::memory_order_acquire);
        }
        std::unique_ptr<SimContext> ctx;
        std::optional<T> result;
        std::exception_ptr error;
        if (!cancelled) {
          const std::uint64_t seed = parent.derive_seed(idx);
          ctx = std::make_unique<SimContext>(SimContext::Replica{}, parent,
                                             seed);
          try {
            result.emplace(cell(idx, *ctx));
          } catch (const std::exception& e) {
            error = std::make_exception_ptr(CellFailure(idx, seed, e.what()));
          } catch (...) {
            error = std::make_exception_ptr(
                CellFailure(idx, seed, "unknown exception"));
          }
          if (error) {
            // CAS-min: record the lowest failed index.
            std::size_t cur = failed_at.load(std::memory_order_relaxed);
            while (idx < cur &&
                   !failed_at.compare_exchange_weak(
                       cur, idx, std::memory_order_release,
                       std::memory_order_relaxed)) {
            }
          }
        }
        {
          std::lock_guard<std::mutex> lock(mu);
          slots[idx].ctx = std::move(ctx);
          slots[idx].result = std::move(result);
          slots[idx].error = error;
          slots[idx].done = true;
        }
        cv_done.notify_one();
      }
    });
  }

  // The calling thread is the merger: fold each cell in as soon as every
  // earlier cell has been folded.  absorb()/merge() run outside the lock so
  // workers are never serialized behind them.
  std::exception_ptr first_error;
  {
    std::unique_lock<std::mutex> lock(mu);
    for (std::size_t idx = 0; idx < total; ++idx) {
      cv_done.wait(lock, [&] { return slots[idx].done; });
      Slot slot = std::move(slots[idx]);
      lock.unlock();
      if (slot.error) {
        if (!first_error) first_error = slot.error;
      } else if (!first_error && slot.result) {
        parent.absorb(*slot.ctx);
        merge(idx, std::move(*slot.result));
      }
      slot.ctx.reset();  // release the replica trace ring promptly
      lock.lock();
      merged = idx + 1;
      cv_space.notify_all();
    }
  }
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace qip
