#include "harness/world.hpp"

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace qip {

World::World(const WorldParams& params, std::uint64_t seed)
    : World(params, seed, process_context()) {}

World::World(const WorldParams& params, std::uint64_t seed, SimContext& ctx)
    : params_(params),
      ctx_(&ctx),
      rng_(seed),
      sim_(ctx_),
      topology_(Rect{params.area_side, params.area_side},
                params.transmission_range),
      transport_(sim_, topology_, stats_, params.per_hop_delay),
      mobility_(sim_, topology_, rng_, params.mobility_tick) {
  topology_.set_context(ctx_);
  // Most recent world wins: scenarios that run several worlds back to back
  // (campus_bringup, protocol_faceoff) timestamp against the active one.
  ctx_->logger().set_time_source(this, [](const void* w) {
    return static_cast<const World*>(w)->sim_.now();
  });
}

World::~World() {
  ctx_->logger().clear_time_source(this);
  if (faults_ && ctx_->faults() == faults_.get()) ctx_->set_faults(nullptr);
  if (adversary_ && ctx_->adversary() == adversary_.get())
    ctx_->set_adversary(nullptr);
}

FaultInjector& World::enable_faults(const FaultPlan& plan) {
  faults_ = std::make_unique<FaultInjector>(plan);
  transport_.set_fault_injector(faults_.get());
  ctx_->set_faults(faults_.get());
  return *faults_;
}

void World::disable_faults() {
  if (faults_ && ctx_->faults() == faults_.get()) ctx_->set_faults(nullptr);
  transport_.set_fault_injector(nullptr);
  faults_.reset();
}

AdversaryController& World::enable_adversary(const AdversaryPlan& plan) {
  adversary_ = std::make_unique<AdversaryController>(plan);
  ctx_->set_adversary(adversary_.get());
  return *adversary_;
}

void World::disable_adversary() {
  if (adversary_ && ctx_->adversary() == adversary_.get())
    ctx_->set_adversary(nullptr);
  adversary_.reset();
}

UniquenessAuditor& World::audit(const AutoconfProtocol& proto,
                                SimTime period, SimTime grace) {
  auditors_.push_back(std::make_unique<UniquenessAuditor>(sim_, topology_,
                                                          proto, period,
                                                          grace));
  return *auditors_.back();
}

Point World::place_random(NodeId id) {
  const Point p = topology_.area().sample(rng_);
  topology_.add_node(id, p);
  return p;
}

void World::settle(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (sim_.step()) {
    QIP_ASSERT_MSG(++n <= max_events, "settle exceeded event budget");
  }
}

}  // namespace qip
